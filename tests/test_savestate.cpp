// Savestate correctness (core/savestate, sim/state_io, docs/savestate.md).
// The bar is byte-identity: save -> restore -> continue must reproduce the
// uninterrupted run bit-for-bit — decision traces, metrics, job states —
// across every sched x fetch policy pair and under active fault injection.
// Also pinned: the framing rejection paths (each SavestateErrc), the
// EventQueue round trip, warm-started duration chains, and the RR-sim
// stale-memo guard (the one savestate bug class the auditor exists to
// catch).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/bce.hpp"
#include "core/savestate.hpp"
#include "sim/state_io.hpp"

namespace bce {
namespace {

// --- state_io primitives ----------------------------------------------

TEST(StateIo, RoundTripsEveryFieldType) {
  StateWriter w;
  w.put_bool("b", true);
  w.put_u32("u32", 0xdeadbeefu);
  w.put_u64("u64", 0x0123456789abcdefull);
  w.put_i64("i64", -42);
  w.put_f64("f64", -0.1);
  w.put_count("n", 3);

  StateReader r(w.payload());
  EXPECT_TRUE(r.get_bool("b"));
  EXPECT_EQ(r.get_u32("u32"), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64("u64"), 0x0123456789abcdefull);
  EXPECT_EQ(r.get_i64("i64"), -42);
  EXPECT_EQ(r.get_f64("f64"), -0.1);
  EXPECT_EQ(r.get_count("n"), 3u);
  EXPECT_TRUE(r.at_end());
}

TEST(StateIo, PreservesNonFiniteAndSignedZeroBits) {
  StateWriter w;
  w.put_f64("inf", std::numeric_limits<double>::infinity());
  w.put_f64("never", kNever);
  w.put_f64("nzero", -0.0);
  StateReader r(w.payload());
  EXPECT_EQ(r.get_f64("inf"), std::numeric_limits<double>::infinity());
  EXPECT_EQ(r.get_f64("never"), kNever);
  const double nz = r.get_f64("nzero");
  EXPECT_EQ(nz, 0.0);
  EXPECT_TRUE(std::signbit(nz));
}

TEST(StateIo, MismatchedFieldNameThrows) {
  StateWriter w;
  w.put_u64("written", 1);
  StateReader r(w.payload());
  try {
    (void)r.get_u64("expected");
    FAIL() << "field mismatch not detected";
  } catch (const SavestateError& e) {
    EXPECT_EQ(e.code(), SavestateErrc::kFieldMismatch);
    EXPECT_NE(std::string(e.what()).find("expected"), std::string::npos);
  }
}

TEST(StateIo, MismatchedTypeThrows) {
  StateWriter w;
  w.put_u64("x", 1);
  StateReader r(w.payload());
  try {
    (void)r.get_f64("x");  // same name, wrong type code
    FAIL() << "type mismatch not detected";
  } catch (const SavestateError& e) {
    EXPECT_EQ(e.code(), SavestateErrc::kFieldMismatch);
  }
}

TEST(StateIo, TruncatedPayloadThrows) {
  StateWriter w;
  w.put_f64("x", 1.5);
  std::vector<std::uint8_t> cut = w.payload();
  cut.resize(cut.size() - 3);
  StateReader r(std::move(cut));
  try {
    (void)r.get_f64("x");
    FAIL() << "truncation not detected";
  } catch (const SavestateError& e) {
    EXPECT_EQ(e.code(), SavestateErrc::kTruncated);
  }
}

TEST(StateIo, RecordsEntriesOnlyWhenAsked) {
  StateWriter w;
  w.put_u64("a", 7);
  EXPECT_TRUE(w.entries().empty());
  w.record_entries(true);
  w.put_f64("b", 0.5);
  ASSERT_EQ(w.entries().size(), 1u);
  EXPECT_EQ(w.entries()[0].name, "b");
  EXPECT_EQ(w.entries()[0].value, "0.5");
}

// --- EventQueue round trip --------------------------------------------

TEST(EventQueueSavestate, RoundTripPreservesPopOrderAndHandleAllocation) {
  EventQueue q;
  q.schedule(5.0, EventKind::kPoll, 1);
  const EventHandle b = q.schedule(3.0, EventKind::kTransfer, 2);
  q.schedule(5.0, EventKind::kUser, 3);
  q.schedule(4.0, EventKind::kHostCrash, 4);
  q.cancel(b);  // leave a tombstone behind

  StateWriter w;
  q.save_state(w);

  EventQueue q2;
  StateReader r(w.payload());
  q2.restore_state(r);
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(q2.size(), 3u);

  // The restored handle allocator continues where the original left off.
  EXPECT_EQ(q2.schedule(10.0, EventKind::kUser, 5),
            q.schedule(10.0, EventKind::kUser, 5));

  // Pop order matches (time, handle) across both queues; the tombstone is
  // gone for good.
  while (!q.empty()) {
    ASSERT_FALSE(q2.empty());
    const Event e1 = q.pop();
    const Event e2 = q2.pop();
    EXPECT_EQ(e1.at, e2.at);
    EXPECT_EQ(e1.handle, e2.handle);
    EXPECT_EQ(static_cast<int>(e1.kind), static_cast<int>(e2.kind));
    EXPECT_EQ(e1.payload, e2.payload);
    EXPECT_NE(e1.handle, b);
  }
  EXPECT_TRUE(q2.empty());
}

// --- full-run byte identity -------------------------------------------

/// Exact comparison of every Metrics field (no tolerances anywhere: the
/// restored run must be bit-for-bit the uninterrupted one).
void expect_metrics_identical(const Metrics& a, const Metrics& b) {
  EXPECT_EQ(a.available_flops, b.available_flops);
  EXPECT_EQ(a.used_flops, b.used_flops);
  EXPECT_EQ(a.wasted_flops, b.wasted_flops);
  EXPECT_EQ(a.share_violation_rms, b.share_violation_rms);
  EXPECT_EQ(a.monotony, b.monotony);
  EXPECT_EQ(a.mean_exclusive_streak, b.mean_exclusive_streak);
  EXPECT_EQ(a.n_rpcs, b.n_rpcs);
  EXPECT_EQ(a.n_work_request_rpcs, b.n_work_request_rpcs);
  EXPECT_EQ(a.n_jobs_fetched, b.n_jobs_fetched);
  EXPECT_EQ(a.n_jobs_completed, b.n_jobs_completed);
  EXPECT_EQ(a.n_jobs_missed, b.n_jobs_missed);
  EXPECT_EQ(a.n_jobs_abandoned, b.n_jobs_abandoned);
  EXPECT_EQ(a.n_preemptions, b.n_preemptions);
  EXPECT_EQ(a.n_sched_passes, b.n_sched_passes);
  EXPECT_EQ(a.failure_wasted_flops, b.failure_wasted_flops);
  EXPECT_EQ(a.recovery_time_sum, b.recovery_time_sum);
  EXPECT_EQ(a.n_job_failures, b.n_job_failures);
  EXPECT_EQ(a.n_job_aborts, b.n_job_aborts);
  EXPECT_EQ(a.n_host_crashes, b.n_host_crashes);
  EXPECT_EQ(a.n_crash_recoveries, b.n_crash_recoveries);
  EXPECT_EQ(a.n_rpcs_lost, b.n_rpcs_lost);
  EXPECT_EQ(a.n_jobs_orphaned, b.n_jobs_orphaned);
  EXPECT_EQ(a.n_transfer_retries, b.n_transfer_retries);
  EXPECT_EQ(a.usage_fraction, b.usage_fraction);
  EXPECT_EQ(a.trace_events, b.trace_events);
  EXPECT_EQ(a.summary(), b.summary());
}

struct TracedRun {
  std::string jsonl;
  EmulationResult result;
};

/// One cold (uninterrupted) traced run.
TracedRun run_cold(const Scenario& sc, const PolicyConfig& pol) {
  std::ostringstream os;
  Trace trace;
  JsonlSink sink(os);
  trace.add_sink(&sink);
  trace.enable_all();
  EmulationOptions opt;
  opt.policy = pol;
  opt.trace = &trace;
  opt.record_timeline = true;
  Emulator em(sc, opt);
  TracedRun out;
  out.result = em.run();
  out.jsonl = os.str();
  return out;
}

/// The same run split in two: capture a savestate at the first checkpoint
/// boundary at or after \p save_frac of the duration (recording how many
/// trace bytes had been emitted by then), restore the frame into a fresh
/// Emulator, and finish. Returns part1 + part2 of the trace.
TracedRun run_split(const Scenario& sc, const PolicyConfig& pol,
                    double save_frac) {
  const SimTime save_at = save_frac * sc.duration;
  std::vector<std::uint8_t> frame;
  std::size_t part1_len = 0;

  std::ostringstream os1;
  Trace trace1;
  JsonlSink sink1(os1);
  trace1.add_sink(&sink1);
  trace1.enable_all();
  EmulationOptions opt1;
  opt1.policy = pol;
  opt1.trace = &trace1;
  opt1.record_timeline = true;
  Emulator em1(sc, opt1);
  em1.set_checkpoint_hook([&](Emulator& e) {
    if (frame.empty() && e.now() + kFpEpsilon >= save_at) {
      frame = capture_savestate(e);
      part1_len = os1.str().size();
    }
  });
  (void)em1.run();
  EXPECT_FALSE(frame.empty()) << "no checkpoint boundary reached save_at";

  std::ostringstream os2;
  Trace trace2;
  JsonlSink sink2(os2);
  trace2.add_sink(&sink2);
  trace2.enable_all();
  EmulationOptions opt2;
  opt2.policy = pol;
  opt2.trace = &trace2;
  opt2.record_timeline = true;
  Emulator em2(sc, opt2);
  restore_savestate(em2, frame);

  TracedRun out;
  out.result = em2.run();
  out.jsonl = os1.str().substr(0, part1_len) + os2.str();
  return out;
}

void expect_split_matches_cold(const Scenario& sc, const PolicyConfig& pol,
                               double save_frac) {
  const TracedRun cold = run_cold(sc, pol);
  const TracedRun split = run_split(sc, pol, save_frac);
  ASSERT_FALSE(cold.jsonl.empty());
  EXPECT_EQ(split.jsonl, cold.jsonl);
  expect_metrics_identical(split.result.metrics, cold.result.metrics);
  ASSERT_EQ(split.result.jobs.size(), cold.result.jobs.size());
  for (std::size_t i = 0; i < cold.result.jobs.size(); ++i) {
    EXPECT_EQ(split.result.jobs[i].flops_done, cold.result.jobs[i].flops_done);
    EXPECT_EQ(split.result.jobs[i].flops_spent,
              cold.result.jobs[i].flops_spent);
    EXPECT_EQ(split.result.jobs[i].completed_at,
              cold.result.jobs[i].completed_at);
    EXPECT_EQ(split.result.jobs[i].failed, cold.result.jobs[i].failed);
  }
  EXPECT_EQ(split.result.timeline.spans().size(),
            cold.result.timeline.spans().size());
  EXPECT_EQ(split.result.final_rec, cold.result.final_rec);
}

Scenario small_scenario() {
  Scenario sc = paper_scenario2();
  sc.duration = 1.5 * kSecondsPerDay;
  return sc;
}

TEST(Savestate, RoundTripIdentityAcrossAllPolicyPairs) {
  const Scenario sc = small_scenario();
  const JobSchedPolicy scheds[] = {JobSchedPolicy::kWrr, JobSchedPolicy::kLocal,
                                   JobSchedPolicy::kGlobal,
                                   JobSchedPolicy::kEdfOnly};
  const FetchPolicy fetches[] = {FetchPolicy::kOrig, FetchPolicy::kHysteresis,
                                 FetchPolicy::kRoundRobin};
  // Deterministically varied save points: each pair splits the run at a
  // different mid-run fraction, so the boundary position itself is
  // exercised rather than one lucky instant.
  Xoshiro256 frac_rng(2026);
  for (const auto s : scheds) {
    for (const auto f : fetches) {
      PolicyConfig pol;
      pol.sched = s;
      pol.fetch = f;
      const double frac = 0.2 + 0.6 * frac_rng.uniform01();
      SCOPED_TRACE(std::string(pol.sched_name()) + "/" + pol.fetch_name() +
                   " @ " + std::to_string(frac));
      expect_split_matches_cold(sc, pol, frac);
    }
  }
}

TEST(Savestate, RoundTripIdentityUnderFaultsAndTransfers) {
  Scenario sc = small_scenario();
  sc.faults = FaultPlan::light();
  sc.host.download_bandwidth_bps = 1e6;
  for (auto& p : sc.projects) {
    for (auto& jc : p.job_classes) jc.input_bytes = 5e7;
  }
  std::string err;
  ASSERT_TRUE(sc.validate(&err)) << err;
  PolicyConfig pol;  // defaults: JS_GLOBAL / JF_HYSTERESIS
  expect_split_matches_cold(sc, pol, 0.37);
  expect_split_matches_cold(sc, pol, 0.71);
}

TEST(Savestate, RoundTripIdentityUnderDeviceAndReplication) {
  // Exercises the v2 savestate fields end to end: the device model's two
  // on/off channels and battery frontier, the per-job workunit/replica
  // ids, and the server's jobs_ok/jobs_failed tallies (which adaptive
  // replication reads, so a restore that dropped them would diverge).
  Scenario sc = small_scenario();
  for (auto& p : sc.projects) {
    p.target_replicas = 3;
    p.quorum = 2;
  }
  sc.host.device.on_ac = OnOffSpec::markov(6.0 * kSecondsPerHour,
                                           2.0 * kSecondsPerHour);
  sc.host.device.on_wifi = OnOffSpec::markov(10.0 * kSecondsPerHour,
                                             1.0 * kSecondsPerHour);
  sc.host.device.battery_charge = 0.8;
  sc.host.device.battery_discharge = 0.3;
  sc.host.device.battery_recharge = 0.6;
  sc.faults.job_error_rate = 0.1;
  std::string err;
  ASSERT_TRUE(sc.validate(&err)) << err;
  for (const char* dispatch : {"SD_MOBILE", "SD_ADAPT_REPL"}) {
    PolicyConfig pol;
    pol.dispatch_by_name = dispatch;
    SCOPED_TRACE(dispatch);
    expect_split_matches_cold(sc, pol, 0.43);
  }
}

TEST(Savestate, RoundTripIdentityUnderAudit) {
  const Scenario sc = small_scenario();
  PolicyConfig pol;
  const TracedRun cold = run_cold(sc, pol);

  // Audited split run: the auditor must accept the restored state (its
  // monotonic history is rebased by restore) and the run must stay
  // byte-identical to the cold one.
  const SimTime save_at = 0.4 * sc.duration;
  std::vector<std::uint8_t> frame;
  std::size_t part1_len = 0;
  std::ostringstream os1;
  Trace trace1;
  JsonlSink sink1(os1);
  trace1.add_sink(&sink1);
  trace1.enable_all();
  InvariantAuditor audit1;
  EmulationOptions opt1;
  opt1.policy = pol;
  opt1.trace = &trace1;
  opt1.auditor = &audit1;
  Emulator em1(sc, opt1);
  em1.set_checkpoint_hook([&](Emulator& e) {
    if (frame.empty() && e.now() + kFpEpsilon >= save_at) {
      frame = capture_savestate(e);
      part1_len = os1.str().size();
    }
  });
  (void)em1.run();
  ASSERT_FALSE(frame.empty());

  std::ostringstream os2;
  Trace trace2;
  JsonlSink sink2(os2);
  trace2.add_sink(&sink2);
  trace2.enable_all();
  InvariantAuditor audit2;
  EmulationOptions opt2;
  opt2.policy = pol;
  opt2.trace = &trace2;
  opt2.auditor = &audit2;
  Emulator em2(sc, opt2);
  restore_savestate(em2, frame);
  const EmulationResult res = em2.run();
  EXPECT_GT(audit2.checks_run(), 0u);
  EXPECT_EQ(os1.str().substr(0, part1_len) + os2.str(), cold.jsonl);
  expect_metrics_identical(res.metrics, cold.result.metrics);
}

// --- warm-started duration chains -------------------------------------

TEST(Savestate, DurationChainMatchesColdRunsInInputOrder) {
  Scenario sc = small_scenario();
  EmulationOptions opt;
  // Deliberately unsorted input; results must come back in input order.
  const std::vector<Duration> durations = {
      1.0 * kSecondsPerDay, 0.5 * kSecondsPerDay, 1.5 * kSecondsPerDay};
  const std::vector<EmulationResult> chained =
      run_duration_chain(sc, opt, durations);
  ASSERT_EQ(chained.size(), durations.size());
  for (std::size_t i = 0; i < durations.size(); ++i) {
    sc.duration = durations[i];
    const EmulationResult cold = emulate(sc, opt);
    SCOPED_TRACE("duration " + std::to_string(durations[i]));
    expect_metrics_identical(chained[i].metrics, cold.metrics);
    EXPECT_EQ(chained[i].jobs.size(), cold.jobs.size());
    EXPECT_EQ(chained[i].final_rec, cold.final_rec);
  }
}

// --- framing rejection paths ------------------------------------------

class SavestateFraming : public ::testing::Test {
 protected:
  void SetUp() override {
    sc_ = small_scenario();
    Emulator em(sc_, opt_);
    em.set_checkpoint_hook([this](Emulator& e) {
      if (frame_.empty() && e.now() > 0.25 * sc_.duration) {
        frame_ = capture_savestate(e);
      }
    });
    (void)em.run();
    ASSERT_FALSE(frame_.empty());
  }

  /// Errc a restore of \p frame fails with; errc 0 means it succeeded.
  SavestateErrc restore_errc(const std::vector<std::uint8_t>& frame) {
    Emulator em(sc_, opt_);
    try {
      restore_savestate(em, frame);
    } catch (const SavestateError& e) {
      return e.code();
    }
    return static_cast<SavestateErrc>(0);
  }

  Scenario sc_;
  EmulationOptions opt_;
  std::vector<std::uint8_t> frame_;
};

TEST_F(SavestateFraming, AcceptsItsOwnFrame) {
  EXPECT_EQ(restore_errc(frame_), static_cast<SavestateErrc>(0));
}

TEST_F(SavestateFraming, RejectsBadMagic) {
  auto f = frame_;
  f[0] ^= 0xffu;
  EXPECT_EQ(restore_errc(f), SavestateErrc::kBadMagic);
}

TEST_F(SavestateFraming, RejectsWrongVersion) {
  auto f = frame_;
  f[8] ^= 0xffu;  // little-endian version field at offset 8
  EXPECT_EQ(restore_errc(f), SavestateErrc::kBadVersion);
}

TEST_F(SavestateFraming, RejectsTruncation) {
  auto f = frame_;
  f.resize(f.size() / 2);
  EXPECT_EQ(restore_errc(f), SavestateErrc::kTruncated);
  f.resize(10);  // shorter than the header
  EXPECT_EQ(restore_errc(f), SavestateErrc::kTruncated);
}

TEST_F(SavestateFraming, RejectsCorruptPayload) {
  auto f = frame_;
  f[f.size() / 2] ^= 0x01u;  // flip one payload bit
  EXPECT_EQ(restore_errc(f), SavestateErrc::kCorrupt);
}

TEST_F(SavestateFraming, RejectsScenarioMismatch) {
  Scenario other = sc_;
  other.seed += 1;  // different seed -> different fingerprint
  Emulator em(other, opt_);
  try {
    restore_savestate(em, frame_);
    FAIL() << "scenario mismatch not detected";
  } catch (const SavestateError& e) {
    EXPECT_EQ(e.code(), SavestateErrc::kScenarioMismatch);
  }
}

TEST_F(SavestateFraming, RejectsPolicyMismatch) {
  EmulationOptions opt;
  opt.policy.sched = JobSchedPolicy::kWrr;  // frame was saved under kGlobal
  Emulator em(sc_, opt);
  try {
    restore_savestate(em, frame_);
    FAIL() << "policy mismatch not detected";
  } catch (const SavestateError& e) {
    EXPECT_EQ(e.code(), SavestateErrc::kScenarioMismatch);
  }
}

TEST_F(SavestateFraming, DurationDifferenceIsNotAMismatch) {
  Scenario longer = sc_;
  longer.duration = 2.0 * sc_.duration;
  Emulator em(longer, opt_);
  EXPECT_NO_THROW(restore_savestate(em, frame_));
}

TEST_F(SavestateFraming, FileRoundTripAndIoError) {
  const std::string path = ::testing::TempDir() + "bce_savestate_test.bcss";
  write_savestate_file(path, frame_);
  EXPECT_EQ(read_savestate_file(path), frame_);
  std::remove(path.c_str());
  try {
    (void)read_savestate_file(path + ".does_not_exist");
    FAIL() << "missing file not detected";
  } catch (const SavestateError& e) {
    EXPECT_EQ(e.code(), SavestateErrc::kIo);
  }
}

TEST_F(SavestateFraming, RecaptureOfRestoredStateIsByteIdentical) {
  Emulator em(sc_, opt_);
  restore_savestate(em, frame_);
  // Save/restore is lossless, not merely equivalent: a second capture of
  // the restored state reproduces the frame byte for byte.
  EXPECT_EQ(capture_savestate(em), frame_);
  // And the recorded field inventory (the bisection dump / docs lint
  // input) is non-empty for a live state.
  EXPECT_FALSE(savestate_entries(em).empty());
}

// --- RR-sim stale-memo guard (the savestate bug class) -----------------

TEST(SavestateRrSim, RestoreInvalidatesTheMemo) {
  const Scenario sc = small_scenario();
  PerProc<double> avail;
  avail.fill(1.0);
  RrSim rr(sc.host, sc.prefs, avail);
  const std::vector<Result*> no_jobs;
  const std::vector<double> shares = {1.0};
  (void)rr.run_cached(5, 0.0, no_jobs, shares);
  EXPECT_EQ(rr.cache_stats().misses, 1u);

  StateWriter w;
  rr.save_state(w);
  StateReader r(w.payload());
  rr.restore_state(r);
  EXPECT_TRUE(r.at_end());

  // Same (version, now) after restore: must MISS, not serve the memo.
  (void)rr.run_cached(5, 0.0, no_jobs, shares);
  EXPECT_EQ(rr.cache_stats().misses, 2u);
  EXPECT_EQ(rr.cache_stats().hits, 0u);
}

TEST(SavestateRrSim, StaleMemoForcesMissWithoutAuditor) {
  const Scenario sc = small_scenario();
  PerProc<double> avail;
  avail.fill(1.0);
  RrSim rr(sc.host, sc.prefs, avail);
  const std::vector<Result*> no_jobs;
  const std::vector<double> shares = {1.0};
  (void)rr.run_cached(5, 0.0, no_jobs, shares);
  // A buggy restore path that rewinds the version without invalidating the
  // memo: run_cached must detect cached_version > state_version and
  // re-simulate instead of serving future state.
  (void)rr.run_cached(3, 0.0, no_jobs, shares);
  EXPECT_EQ(rr.cache_stats().misses, 2u);
  EXPECT_EQ(rr.cache_stats().hits, 0u);
}

TEST(SavestateRrSim, StaleMemoFaultsUnderAudit) {
  const Scenario sc = small_scenario();
  PerProc<double> avail;
  avail.fill(1.0);
  RrSim rr(sc.host, sc.prefs, avail);
  InvariantAuditor audit;
  rr.set_auditor(&audit);
  const std::vector<Result*> no_jobs;
  const std::vector<double> shares = {1.0};
  (void)rr.run_cached(5, 0.0, no_jobs, shares);
  // A restore legitimately rebased the auditor to version 3 — but the memo
  // still claims version 5: the audit must fault at the decision point.
  audit.on_state_restored(0.0, 3);
  EXPECT_THROW((void)rr.run_cached(3, 0.0, no_jobs, shares), AuditFailure);
}

}  // namespace
}  // namespace bce
