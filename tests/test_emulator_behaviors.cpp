// Behavioural integration tests: cross-module effects observable only in
// full emulations — backoff dynamics, report forcing, timeline/metrics
// consistency, server deadline checks, and buffer-size effects.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/emulator.hpp"
#include "core/paper_scenarios.hpp"

namespace bce {
namespace {

Scenario simple(double days, int ncpus = 2) {
  Scenario sc;
  sc.name = "behave";
  sc.host = HostInfo::cpu_only(ncpus, 1e9);
  sc.duration = days * kSecondsPerDay;
  sc.prefs.min_queue = 1800.0;
  sc.prefs.max_queue = 7200.0;
  ProjectConfig p;
  p.name = "p0";
  p.resource_share = 100.0;
  JobClass jc;
  jc.name = "cpu";
  jc.flops_est = 1800e9;
  jc.flops_cv = 0.1;
  jc.latency_bound = kSecondsPerDay;
  jc.usage = ResourceUsage::cpu(1.0);
  p.job_classes.push_back(jc);
  sc.projects.push_back(p);
  return sc;
}

TEST(Behaviour, TimelineBusySecondsMatchUsedFlops) {
  Scenario sc = simple(0.5);
  EmulationOptions opt;
  opt.record_timeline = true;
  const EmulationResult res = emulate(sc, opt);

  double busy_secs = 0.0;
  for (const auto& s : res.timeline.spans()) {
    if (s.type == ProcType::kCpu && s.project != kNoProject) {
      busy_secs += s.t1 - s.t0;
    }
  }
  // Every CPU job uses exactly one CPU at 1 GFLOPS, so timeline seconds
  // times 1e9 must equal used FLOPs (timeline draws the slot regardless of
  // fractional usage, which is 1.0 here).
  EXPECT_NEAR(busy_secs * 1e9, res.metrics.used_flops,
              0.01 * res.metrics.used_flops);
}

TEST(Behaviour, TimelineSpansNeverOverlapPerSlot) {
  Scenario sc = paper_scenario2();
  sc.duration = 0.5 * kSecondsPerDay;
  EmulationOptions opt;
  opt.record_timeline = true;
  const EmulationResult res = emulate(sc, opt);
  std::map<std::pair<int, int>, SimTime> last_end;
  for (const auto& s : res.timeline.spans()) {
    const auto key = std::make_pair(static_cast<int>(s.type), s.slot);
    const auto it = last_end.find(key);
    if (it != last_end.end()) {
      EXPECT_GE(s.t0, it->second - 1e-6)
          << proc_name(s.type) << " slot " << s.slot;
    }
    last_end[key] = std::max(last_end[key], s.t1);
  }
}

TEST(Behaviour, SporadicJobClassCausesBackoffNotSpam) {
  // The project's only job class is unavailable half the time; the client
  // must back off rather than hammer the server every poll.
  Scenario sc = simple(1.0);
  sc.projects[0].job_classes[0].avail =
      OnOffSpec::markov(2.0 * 3600.0, 2.0 * 3600.0);
  const EmulationResult res = emulate(sc);
  // One day = 1440 polls; without backoff, every empty-queue poll would
  // RPC. With exponential backoff the total stays far below that.
  EXPECT_LT(res.metrics.n_rpcs, 300);
  EXPECT_GT(res.metrics.n_jobs_completed, 0);
}

TEST(Behaviour, DownProjectBackoffCapsRpcRate) {
  Scenario sc = simple(1.0);
  sc.projects[0].up = OnOffSpec::markov(1.0, 1e12, false);  // always down
  const EmulationResult res = emulate(sc);
  EXPECT_EQ(res.metrics.n_jobs_completed, 0);
  // Backoff doubles 600 s -> 4 h; a day of retries is a few dozen RPCs.
  EXPECT_LT(res.metrics.n_rpcs, 40);
  EXPECT_GT(res.metrics.n_rpcs, 3);
}

TEST(Behaviour, ReportOnlyRpcsWhenNoWorkNeeded) {
  // Huge queue buffers mean no further work requests for a while, but
  // completed jobs must still be reported within max_report_delay.
  Scenario sc = simple(0.5);
  sc.prefs.max_report_delay = 3600.0;
  const EmulationResult res = emulate(sc);
  // There are RPCs beyond work requests: the report-only ones.
  EXPECT_GT(res.metrics.n_rpcs, res.metrics.n_work_request_rpcs);
  for (const auto& j : res.jobs) {
    if (j.is_complete() &&
        j.completed_at + sc.prefs.max_report_delay + 2 * sc.prefs.poll_period <
            sc.duration) {
      EXPECT_TRUE(j.reported);
    }
  }
}

TEST(Behaviour, ServerDeadlineCheckPreventsWaste) {
  Scenario sc = paper_scenario1(1100.0);  // slack 100: nearly hopeless
  sc.duration = 2.0 * kSecondsPerDay;
  EmulationOptions off;
  off.policy.sched = JobSchedPolicy::kWrr;
  off.policy.fetch = FetchPolicy::kOrig;
  EmulationOptions on = off;
  on.policy.server_deadline_check = true;
  const Metrics m_off = emulate(sc, off).metrics;
  const Metrics m_on = emulate(sc, on).metrics;
  EXPECT_GT(m_off.wasted_fraction(), 0.3);
  EXPECT_LT(m_on.wasted_fraction(), 0.05);
  // The refused project starves instead: violation appears.
  EXPECT_GT(m_on.share_violation(), m_off.share_violation());
}

TEST(Behaviour, BiggerBuffersMeanFewerWorkRpcs) {
  Scenario small = simple(2.0);
  small.prefs.min_queue = 900.0;
  small.prefs.max_queue = 1800.0;
  Scenario big = simple(2.0);
  big.prefs.min_queue = 4.0 * 3600.0;
  big.prefs.max_queue = 16.0 * 3600.0;
  EmulationOptions opt;
  opt.policy.fetch = FetchPolicy::kHysteresis;
  const Metrics ms = emulate(small, opt).metrics;
  const Metrics mb = emulate(big, opt).metrics;
  EXPECT_GT(ms.n_work_request_rpcs, 2 * mb.n_work_request_rpcs);
  // Throughput unaffected: a single always-on project keeps the host busy.
  EXPECT_LT(ms.idle_fraction(), 0.02);
  EXPECT_LT(mb.idle_fraction(), 0.02);
}

TEST(Behaviour, PollPeriodBoundsSchedulingLatency) {
  Scenario sc = simple(0.25);
  sc.prefs.poll_period = 600.0;  // sluggish client
  const EmulationResult res = emulate(sc);
  // Jobs still complete; the *first* job to run starts within one poll of
  // the initial batch's arrival (later batch-mates wait for a free CPU).
  ASSERT_GT(res.metrics.n_jobs_completed, 0);
  double earliest_start = kNever;
  for (const auto& j : res.jobs) {
    if (j.received == 0.0 && j.first_started < kNever) {
      earliest_start = std::min(earliest_start, j.first_started);
    }
  }
  ASSERT_LT(earliest_start, kNever);
  EXPECT_GT(earliest_start, 0.0);  // not instant: waits for a poll
  EXPECT_LE(earliest_start, sc.prefs.poll_period + 1e-6);
}

TEST(Behaviour, GpuUnavailabilityIdlesOnlyGpu) {
  Scenario sc = paper_scenario2();
  sc.duration = 1.0 * kSecondsPerDay;
  sc.availability.gpu_allowed = OnOffSpec::markov(1.0, 1e12, false);  // never
  const EmulationResult res = emulate(sc);
  // No GPU job ever ran.
  for (const auto& j : res.jobs) {
    if (j.usage.uses_gpu()) {
      EXPECT_EQ(j.flops_spent, 0.0);
    }
  }
  // CPUs still fully used: available capacity counts only the CPU.
  EXPECT_LT(res.metrics.idle_fraction(), 0.05);
}

TEST(Behaviour, MemoryPressureSerializesBigJobs) {
  Scenario sc = simple(0.5, 4);
  sc.host.ram_bytes = 4e9;
  sc.prefs.ram_limit_fraction = 0.5;  // 2 GB budget
  sc.projects[0].job_classes[0].ram_bytes = 1.2e9;  // only one fits
  const EmulationResult res = emulate(sc);
  // Effective parallelism 1 of 4 CPUs: idle ~0.75.
  EXPECT_GT(res.metrics.idle_fraction(), 0.6);
  EXPECT_GT(res.metrics.n_jobs_completed, 0);
}

TEST(Behaviour, EstimatedDelayReportedToServer) {
  // With the deadline check on and moderate slack, batch depth adapts to
  // the reported queue: jobs keep meeting deadlines even under WRR.
  Scenario sc = paper_scenario1(2500.0);
  sc.duration = 2.0 * kSecondsPerDay;
  EmulationOptions opt;
  opt.policy.sched = JobSchedPolicy::kWrr;
  opt.policy.fetch = FetchPolicy::kHysteresis;
  opt.policy.server_deadline_check = true;
  const Metrics m = emulate(sc, opt).metrics;
  EXPECT_LT(m.wasted_fraction(), 0.1);
}

}  // namespace
}  // namespace bce
