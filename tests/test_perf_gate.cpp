// Tests for the bce_perf regression gate (tools/bce_perf.cpp compare
// mode), driven through synthetic bce-perf-v1 reports so the gate's
// pass/fail contract is pinned without running real benchmarks: exit 7
// on regression, 0 when clean or --warn-only, 1 on usage/IO errors.
//
// The binary path arrives via BCE_PERF_BIN (tests/CMakeLists.txt).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

namespace {

struct GateRun {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

GateRun run_gate(const std::string& args) {
  const std::string cmd = std::string(BCE_PERF_BIN) + " " + args + " 2>&1";
  GateRun r;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[512];
  while (std::fgets(buf, sizeof buf, pipe) != nullptr) r.output += buf;
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

/// Write a minimal bce-perf-v1 report with the given kernel throughputs.
std::string write_report(
    const std::string& name,
    const std::vector<std::pair<std::string, double>>& kernels) {
  const std::string path = ::testing::TempDir() + "bce_gate_" + name + ".json";
  std::ofstream os(path);
  os << "{\n  \"schema\": \"bce-perf-v1\",\n  \"quick\": true,\n"
     << "  \"kernels\": {\n";
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    os << "    \"" << kernels[i].first
       << "\": {\"items_per_sec\": " << kernels[i].second
       << ", \"items\": 100, \"wall_seconds\": 0.1}"
       << (i + 1 < kernels.size() ? "," : "") << "\n";
  }
  os << "  }\n}\n";
  return path;
}

TEST(PerfGate, RegressionExitsSeven) {
  const std::string base =
      write_report("base_reg", {{"alpha", 1000.0}, {"beta", 2000.0}});
  const std::string cur =
      write_report("cur_reg", {{"alpha", 1000.0}, {"beta", 1500.0}});
  const GateRun r = run_gate("compare " + base + " " + cur);
  EXPECT_EQ(r.exit_code, 7) << r.output;
  EXPECT_NE(r.output.find("beta"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("REGRESSION"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("1 kernel(s) regressed"), std::string::npos)
      << r.output;
}

TEST(PerfGate, WithinToleranceAndImprovementsExitZero) {
  const std::string base =
      write_report("base_ok", {{"alpha", 1000.0}, {"beta", 2000.0}});
  // alpha -5% (inside the default 10% band), beta +50%.
  const std::string cur =
      write_report("cur_ok", {{"alpha", 950.0}, {"beta", 3000.0}});
  const GateRun r = run_gate("compare " + base + " " + cur);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("no regressions"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("REGRESSION"), std::string::npos) << r.output;
}

TEST(PerfGate, TighterToleranceCatchesSmallSlip) {
  const std::string base = write_report("base_tol", {{"alpha", 1000.0}});
  const std::string cur = write_report("cur_tol", {{"alpha", 950.0}});
  const GateRun r = run_gate("compare " + base + " " + cur +
                             " --tolerance 0.02");
  EXPECT_EQ(r.exit_code, 7) << r.output;
}

TEST(PerfGate, WarnOnlyReportsButExitsZero) {
  const std::string base = write_report("base_warn", {{"alpha", 1000.0}});
  const std::string cur = write_report("cur_warn", {{"alpha", 500.0}});
  const GateRun r = run_gate("compare " + base + " " + cur + " --warn-only");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  // The regression is still reported, just not fatal.
  EXPECT_NE(r.output.find("REGRESSION"), std::string::npos) << r.output;
}

TEST(PerfGate, KernelMissingFromCurrentIsSkippedNotFailed) {
  const std::string base =
      write_report("base_miss", {{"alpha", 1000.0}, {"gone", 9.0}});
  const std::string cur = write_report("cur_miss", {{"alpha", 1100.0}});
  const GateRun r = run_gate("compare " + base + " " + cur);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("gone: MISSING from current"), std::string::npos)
      << r.output;
}

TEST(PerfGate, MissingFileIsAUsageError) {
  const std::string base = write_report("base_io", {{"alpha", 1000.0}});
  const GateRun r =
      run_gate("compare " + base + " /nonexistent_bce_perf_report.json");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("cannot open"), std::string::npos) << r.output;
}

TEST(PerfGate, NonReportFileIsAUsageError) {
  const std::string junk = ::testing::TempDir() + "bce_gate_junk.json";
  std::ofstream(junk) << "{\"not\": \"a report\"}\n";
  const std::string base = write_report("base_junk", {{"alpha", 1000.0}});
  const GateRun r = run_gate("compare " + base + " " + junk);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("no kernels found"), std::string::npos) << r.output;
}

TEST(PerfGate, MissingPathsAreAUsageError) {
  const GateRun r = run_gate("compare");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("BASELINE and CURRENT"), std::string::npos)
      << r.output;
}

TEST(PerfGate, UnknownSubcommandIsAUsageError) {
  const GateRun r = run_gate("frobnicate");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("usage"), std::string::npos) << r.output;
}

}  // namespace
