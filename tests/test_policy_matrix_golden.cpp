// Golden-equivalence suite for the pluggable-policy refactor: the figures
// of merit of every (JobSchedPolicy x FetchPolicy) combination on paper
// scenarios 1-4 are pinned to the exact values the enum-dispatched
// implementation produced (captured from commit 54a61d1's tree, before the
// strategy/registry/ClientRuntime refactor landed).
//
// Unlike test_regression_golden (loose shape bands), these are *exact*
// comparisons: the refactor must be a pure restructuring, bit-identical in
// behavior. Doubles are compared with EXPECT_DOUBLE_EQ (4 ulps) to stay
// robust against harmless FP-contraction differences across compilers
// while still catching any real behavioral drift.

#include <gtest/gtest.h>

#include "core/emulator.hpp"
#include "core/paper_scenarios.hpp"

namespace bce {
namespace {

struct MatrixGolden {
  const char* scenario;
  int sched;  // static_cast<int>(JobSchedPolicy)
  int fetch;  // static_cast<int>(FetchPolicy)
  double idle, wasted, share_violation, monotony, rpcs_per_job;
  std::int64_t jobs_fetched, jobs_completed, jobs_missed;
};

// Captured with tools/capture_golden from the pre-refactor tree.
const MatrixGolden kMatrix[] = {
    {"s1", 0, 0, 0.0003472222222222765, 0.41625642344832148, 0.0015451097703927108, 0.26334052624086463, 1.017391304347826, 117, 115, 71},
    {"s1", 0, 1, 0.0003472222222222765, 0.43933139669072285, 0.014158793063714259, 0.51857002398242458, 0.37168141592920356, 118, 113, 76},
    {"s1", 0, 2, 0.0003472222222222765, 0.41188785067257661, 0.050332930594177004, 0.43022222623738743, 0.37962962962962965, 113, 108, 71},
    {"s1", 1, 0, 0.0003472222222222765, 0.20252238329002931, 0.0022672464088125122, 0.36537281238107921, 1.017391304347826, 117, 115, 34},
    {"s1", 1, 1, 0.0003472222222222765, 0.36726307720932638, 0.0070736668809174841, 0.60842996419510464, 0.35652173913043478, 116, 115, 65},
    {"s1", 1, 2, 0.0003472222222222765, 0.3337844585068116, 0.047848184418558454, 0.5637976729193892, 0.37614678899082571, 114, 109, 59},
    {"s1", 2, 0, 0.0003472222222222765, 0.094786957814778319, 0.001301232860473317, 0.37066990813168282, 1.008695652173913, 116, 115, 16},
    {"s1", 2, 1, 0.0003472222222222765, 0.36726307720932638, 0.0070736668809174841, 0.60842996419510464, 0.35652173913043478, 116, 115, 65},
    {"s1", 2, 2, 0.0003472222222222765, 0.3337844585068116, 0.047848184418558454, 0.5637976729193892, 0.37614678899082571, 114, 109, 59},
    {"s1", 3, 0, 0.0003472222222222765, 0, 0.0007068177769892493, 0.44466073087712471, 1.0086206896551724, 117, 116, 0},
    {"s1", 3, 1, 0.0003472222222222765, 0.36726307720932638, 0.0070736668809174841, 0.60842996419510464, 0.35652173913043478, 116, 115, 65},
    {"s1", 3, 2, 0.0003472222222222765, 0.3337844585068116, 0.047848184418558454, 0.5637976729193892, 0.37614678899082571, 114, 109, 59},
    {"s2", 0, 0, 0, 0, 0.35653875962763859, 0.26650645440124626, 0.99531615925058547, 443, 427, 0},
    {"s2", 0, 1, 0, 0, 0.35805503673881756, 0.75753547962790091, 0.056074766355140186, 476, 428, 0},
    {"s2", 0, 2, 0, 0, 0.27923334886693307, 0.80457325179473549, 0.049065420560747662, 472, 428, 0},
    {"s2", 1, 0, 0, 0, 0.35653875962763859, 0.26650645440124626, 0.99531615925058547, 443, 427, 0},
    {"s2", 1, 1, 0, 0, 0.35805503673881756, 0.75753547962790091, 0.056074766355140186, 476, 428, 0},
    {"s2", 1, 2, 0, 0, 0.27923334886693307, 0.80457325179473549, 0.049065420560747662, 472, 428, 0},
    {"s2", 2, 0, 0, 0, 0.22295955932044417, 0.076923076923076927, 0.99766899766899764, 444, 429, 0},
    {"s2", 2, 1, 0, 0, 0.25198980468455456, 0.8314606741573034, 0.046728971962616821, 469, 428, 0},
    {"s2", 2, 2, 0, 0, 0.27406646979786131, 0.82377512150269272, 0.049180327868852458, 474, 427, 0},
    {"s2", 3, 0, 0, 0, 0.3595136293946799, 0.71022727272727271, 0.99767441860465111, 445, 430, 0},
    {"s2", 3, 1, 0, 0, 0.35704143845254033, 0.86046511627906974, 0.055813953488372092, 459, 430, 0},
    {"s2", 3, 2, 0, 0, 0.27793132830407286, 0.83992094861660083, 0.048837209302325581, 459, 430, 0},
    {"s3", 0, 0, 0.00011574074074072183, 0, 0.5, 0.99310265547764109, 1, 1, 0, 0},
    {"s3", 0, 1, 0.00011574074074072183, 0, 0.5, 0.99310265547764109, 1, 1, 0, 0},
    {"s3", 0, 2, 0.00011574074074072183, 0, 0.5, 0.99310265547764109, 1, 1, 0, 0},
    {"s3", 1, 0, 0.00011574074074072183, 0, 0.5, 0.99310265547764109, 1, 1, 0, 0},
    {"s3", 1, 1, 0.00011574074074072183, 0, 0.5, 0.99310265547764109, 1, 1, 0, 0},
    {"s3", 1, 2, 0.00011574074074072183, 0, 0.5, 0.99310265547764109, 1, 1, 0, 0},
    {"s3", 2, 0, 0.00011574074074072183, 0, 0.5, 0.99310265547764109, 1, 1, 0, 0},
    {"s3", 2, 1, 0.00011574074074072183, 0, 0.5, 0.99310265547764109, 1, 1, 0, 0},
    {"s3", 2, 2, 0.00011574074074072183, 0, 0.5, 0.99310265547764109, 1, 1, 0, 0},
    {"s3", 3, 0, 0.00011574074074072183, 0, 0.5, 0.99310265547764109, 1, 1, 0, 0},
    {"s3", 3, 1, 0.00011574074074072183, 0, 0.5, 0.99310265547764109, 1, 1, 0, 0},
    {"s3", 3, 2, 0.00011574074074072183, 0, 0.5, 0.99310265547764109, 1, 1, 0, 0},
    {"s4", 0, 0, 0, 0, 0.024992720051642235, 0.016393442622950821, 1.0851063829787233, 745, 705, 0},
    {"s4", 0, 1, 0, 0, 0.056661522241062835, 0.016393442622950821, 0.052473763118440778, 724, 667, 0},
    {"s4", 0, 2, 0, 0, 0.06532301059258093, 0.016393442622950821, 0.042553191489361701, 873, 799, 0},
    {"s4", 1, 0, 0, 0, 0.024992720051642235, 0.016393442622950821, 1.0851063829787233, 745, 705, 0},
    {"s4", 1, 1, 0, 0, 0.056661522241062835, 0.016393442622950821, 0.052473763118440778, 724, 667, 0},
    {"s4", 1, 2, 0, 0, 0.06532301059258093, 0.016393442622950821, 0.042553191489361701, 873, 799, 0},
    {"s4", 2, 0, 0, 0, 0.0090249537932356877, 0.032258064516129031, 1.0507131537242471, 678, 631, 0},
    {"s4", 2, 1, 0, 0, 0.052329717854761822, 0.40671809869649822, 0.045045045045045043, 784, 666, 0},
    {"s4", 2, 2, 0, 0, 0.063889199914230033, 0.016393442622950821, 0.040243902439024391, 872, 820, 0},
    {"s4", 3, 0, 0, 0, 0.025788573507666085, 0.49686610217132066, 1.0931849791376913, 791, 719, 0},
    {"s4", 3, 1, 0, 0, 0.067519805683064801, 0.89395870109091358, 0.033557046979865772, 813, 745, 0},
    {"s4", 3, 2, 0, 0, 0.062834435490452964, 0.016393442622950821, 0.035236938031591739, 876, 823, 0},
};

Scenario make_scenario(const std::string& name) {
  if (name == "s1") {
    Scenario sc = paper_scenario1(1500.0);
    sc.duration = 2.0 * kSecondsPerDay;
    return sc;
  }
  if (name == "s2") {
    Scenario sc = paper_scenario2();
    sc.duration = 2.0 * kSecondsPerDay;
    return sc;
  }
  if (name == "s3") {
    Scenario sc = paper_scenario3();
    sc.duration = 6.0 * kSecondsPerDay;
    return sc;
  }
  Scenario sc = paper_scenario4();
  sc.duration = 2.0 * kSecondsPerDay;
  return sc;
}

class PolicyMatrixGolden : public ::testing::TestWithParam<MatrixGolden> {};

TEST_P(PolicyMatrixGolden, ExactFiguresOfMerit) {
  const MatrixGolden& g = GetParam();
  const Scenario sc = make_scenario(g.scenario);
  EmulationOptions opt;
  opt.policy.sched = static_cast<JobSchedPolicy>(g.sched);
  opt.policy.fetch = static_cast<FetchPolicy>(g.fetch);
  const Metrics m = emulate(sc, opt).metrics;

  EXPECT_DOUBLE_EQ(m.idle_fraction(), g.idle);
  EXPECT_DOUBLE_EQ(m.wasted_fraction(), g.wasted);
  EXPECT_DOUBLE_EQ(m.share_violation(), g.share_violation);
  EXPECT_DOUBLE_EQ(m.monotony, g.monotony);
  EXPECT_DOUBLE_EQ(m.rpcs_per_job(), g.rpcs_per_job);
  EXPECT_EQ(m.n_jobs_fetched, g.jobs_fetched);
  EXPECT_EQ(m.n_jobs_completed, g.jobs_completed);
  EXPECT_EQ(m.n_jobs_missed, g.jobs_missed);
}

// The kMatrix goldens were captured before the server-dispatch seam
// existed, so the suite above already pins the default dispatch path
// byte-for-byte. This pins the seam itself: explicitly selecting
// SD_PAPER by name must route through the registry and still reproduce
// the identical run — same figures on every scenario, not just "close".
TEST(PolicyMatrixGolden, NamedDefaultDispatchIsByteIdentical) {
  for (const char* name : {"s1", "s2", "s3", "s4"}) {
    SCOPED_TRACE(name);
    const Scenario sc = make_scenario(name);
    const Metrics def = emulate(sc, EmulationOptions{}).metrics;
    EmulationOptions named;
    named.policy.dispatch_by_name = "SD_PAPER";
    const Metrics m = emulate(sc, named).metrics;
    EXPECT_EQ(m.summary(), def.summary());
    EXPECT_EQ(m.used_flops, def.used_flops);
    EXPECT_EQ(m.wasted_flops, def.wasted_flops);
    EXPECT_EQ(m.monotony, def.monotony);
    EXPECT_EQ(m.n_jobs_fetched, def.n_jobs_fetched);
    EXPECT_EQ(m.n_jobs_completed, def.n_jobs_completed);
    EXPECT_EQ(m.n_jobs_missed, def.n_jobs_missed);
    EXPECT_EQ(m.n_rpcs, def.n_rpcs);
  }
}

INSTANTIATE_TEST_SUITE_P(
    FullMatrix, PolicyMatrixGolden, ::testing::ValuesIn(kMatrix),
    [](const ::testing::TestParamInfo<MatrixGolden>& info) {
      PolicyConfig pc;
      pc.sched = static_cast<JobSchedPolicy>(info.param.sched);
      pc.fetch = static_cast<FetchPolicy>(info.param.fetch);
      return std::string(info.param.scenario) + "_" + pc.sched_name() + "_" +
             pc.fetch_name();
    });

}  // namespace
}  // namespace bce
