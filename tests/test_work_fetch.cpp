// Unit tests for the work-fetch policies (client/work_fetch): triggers,
// request sizing, project selection, and backoff handling.

#include <gtest/gtest.h>

#include "client/work_fetch.hpp"

namespace bce {
namespace {

struct Fixture {
  HostInfo host = HostInfo::cpu_only(4, 1e9);
  Preferences prefs;
  PolicyConfig policy;
  Trace log;
  std::vector<ProjectConfig> projects;
  std::vector<ProjectFetchState> states;
  std::vector<PerProc<bool>> endangered;
  RrSimOutput rr;

  Fixture() {
    prefs.min_queue = 1000.0;
    prefs.max_queue = 3000.0;
    policy.sched = JobSchedPolicy::kGlobal;
  }

  void add_project(const std::string& name, double share, bool cpu = true,
                   bool gpu = false) {
    ProjectConfig p;
    p.name = name;
    p.resource_share = share;
    if (cpu) {
      JobClass c;
      c.usage = ResourceUsage::cpu(1.0);
      c.flops_est = 1e12;
      p.job_classes.push_back(c);
    }
    if (gpu) {
      JobClass g;
      g.usage = ResourceUsage::gpu(ProcType::kNvidia, 1.0);
      g.flops_est = 1e13;
      p.job_classes.push_back(g);
    }
    projects.push_back(p);
    states.emplace_back();
    endangered.emplace_back();
  }

  WorkFetch::Decision choose(SimTime now, const Accounting& acct) {
    WorkFetch wf(host, prefs, policy);
    std::vector<const ProjectConfig*> cfgs;
    for (const auto& p : projects) cfgs.push_back(&p);
    return wf.choose(now, rr, acct, cfgs, states, endangered, log);
  }

  Accounting make_acct() {
    std::vector<double> shares;
    double total = 0.0;
    for (const auto& p : projects) total += p.resource_share;
    for (const auto& p : projects) shares.push_back(p.resource_share / total);
    return Accounting(host, shares, kSecondsPerDay);
  }
};

TEST(WorkFetch, HysteresisTriggersBelowMinQueue) {
  Fixture f;
  f.policy.fetch = FetchPolicy::kHysteresis;
  f.add_project("a", 100.0);
  f.rr.saturated[ProcType::kCpu] = 500.0;  // < min_queue
  f.rr.shortfall[ProcType::kCpu] = 8000.0;
  const auto acct = f.make_acct();
  const auto d = f.choose(0.0, acct);
  ASSERT_TRUE(d.fetch());
  EXPECT_EQ(d.project, 0);
  // Hysteresis requests the whole fill-to-max shortfall.
  EXPECT_DOUBLE_EQ(d.request.req_seconds[ProcType::kCpu], 8000.0);
}

TEST(WorkFetch, HysteresisSilentAboveMinQueue) {
  Fixture f;
  f.policy.fetch = FetchPolicy::kHysteresis;
  f.add_project("a", 100.0);
  f.rr.saturated[ProcType::kCpu] = 1500.0;  // >= min_queue
  f.rr.shortfall[ProcType::kCpu] = 5000.0;  // would be requested, but no trigger
  const auto acct = f.make_acct();
  EXPECT_FALSE(f.choose(0.0, acct).fetch());
}

TEST(WorkFetch, OrigTriggersOnMinWindowShortfall) {
  Fixture f;
  f.policy.fetch = FetchPolicy::kOrig;
  f.add_project("a", 100.0);
  f.add_project("b", 100.0);
  f.rr.saturated[ProcType::kCpu] = 5000.0;  // deep queue...
  f.rr.shortfall_min[ProcType::kCpu] = 200.0;  // ...but a min-window deficit
  f.rr.shortfall[ProcType::kCpu] = 2000.0;
  const auto acct = f.make_acct();
  const auto d = f.choose(0.0, acct);
  ASSERT_TRUE(d.fetch());
  // JF_ORIG asks for the project's share of the *min-window* deficit.
  EXPECT_DOUBLE_EQ(d.request.req_seconds[ProcType::kCpu], 0.5 * 200.0);
}

TEST(WorkFetch, OrigSilentWithoutMinShortfall) {
  Fixture f;
  f.policy.fetch = FetchPolicy::kOrig;
  f.add_project("a", 100.0);
  f.rr.shortfall_min[ProcType::kCpu] = 0.0;
  f.rr.shortfall[ProcType::kCpu] = 2500.0;  // max-window deficit is ignored
  const auto acct = f.make_acct();
  EXPECT_FALSE(f.choose(0.0, acct).fetch());
}

TEST(WorkFetch, PicksHighestPriorityProject) {
  Fixture f;
  f.policy.fetch = FetchPolicy::kHysteresis;
  f.add_project("a", 100.0);
  f.add_project("b", 100.0);
  f.rr.saturated[ProcType::kCpu] = 0.0;
  f.rr.shortfall[ProcType::kCpu] = 4000.0;
  Accounting acct = f.make_acct();
  // Project 0 consumed a lot recently -> project 1 has higher priority.
  std::vector<PerProc<double>> use(2);
  use[0][ProcType::kCpu] = 1000.0;
  std::vector<PerProc<bool>> run(2);
  run[0][ProcType::kCpu] = run[1][ProcType::kCpu] = true;
  acct.charge(1000.0, 1000.0, use, run);
  const auto d = f.choose(1000.0, acct);
  ASSERT_TRUE(d.fetch());
  EXPECT_EQ(d.project, 1);
}

TEST(WorkFetch, SkipsBackedOffProject) {
  Fixture f;
  f.policy.fetch = FetchPolicy::kHysteresis;
  f.add_project("a", 100.0);
  f.add_project("b", 100.0);
  f.rr.saturated[ProcType::kCpu] = 0.0;
  f.rr.shortfall[ProcType::kCpu] = 4000.0;
  f.states[0].type_backoff_until[ProcType::kCpu] = 5000.0;
  const auto acct = f.make_acct();
  const auto d = f.choose(100.0, acct);
  ASSERT_TRUE(d.fetch());
  EXPECT_EQ(d.project, 1);
}

TEST(WorkFetch, OrigSkipsBackedOffProject) {
  // The per-type backoff must gate JF_ORIG's candidate set exactly as it
  // gates JF_HYSTERESIS's (SkipsBackedOffProject above).
  Fixture f;
  f.policy.fetch = FetchPolicy::kOrig;
  f.add_project("a", 100.0);
  f.add_project("b", 100.0);
  f.rr.shortfall_min[ProcType::kCpu] = 200.0;
  f.rr.shortfall[ProcType::kCpu] = 2000.0;
  f.states[0].type_backoff_until[ProcType::kCpu] = 5000.0;
  const auto acct = f.make_acct();
  const auto d = f.choose(100.0, acct);
  ASSERT_TRUE(d.fetch());
  EXPECT_EQ(d.project, 1);
  // Once the backoff expires the project is eligible again.
  f.states[1].type_backoff_until[ProcType::kCpu] = 9000.0;
  EXPECT_EQ(f.choose(6000.0, acct).project, 0);
}

TEST(WorkFetch, RetryBackoffDoublesFromMinAndCaps) {
  Fixture f;
  f.add_project("a", 100.0);
  WorkFetch wf(f.host, f.prefs, f.policy);
  const SimTime first = wf.on_reply_lost(0.0, f.states[0], f.log);
  EXPECT_DOUBLE_EQ(f.states[0].rpc_retry_backoff_len,
                   WorkFetch::kRetryBackoffMin);
  EXPECT_DOUBLE_EQ(first, WorkFetch::kRetryBackoffMin);
  EXPECT_DOUBLE_EQ(f.states[0].next_allowed_rpc, first);
  wf.on_reply_lost(first, f.states[0], f.log);
  EXPECT_DOUBLE_EQ(f.states[0].rpc_retry_backoff_len,
                   2.0 * WorkFetch::kRetryBackoffMin);
  for (int i = 0; i < 20; ++i) wf.on_reply_lost(1000.0 * i, f.states[0], f.log);
  EXPECT_DOUBLE_EQ(f.states[0].rpc_retry_backoff_len, WorkFetch::kBackoffMax);
}

TEST(WorkFetch, RetryBackoffDistinctFromProjectDownBackoff) {
  Fixture f;
  f.add_project("a", 100.0);
  WorkFetch wf(f.host, f.prefs, f.policy);
  wf.on_reply_lost(0.0, f.states[0], f.log);
  // A lost reply grows only the retry backoff, not the "project down" one.
  EXPECT_GT(f.states[0].rpc_retry_backoff_len, 0.0);
  EXPECT_DOUBLE_EQ(f.states[0].project_backoff_len, 0.0);
  WorkRequest req;
  RpcReply down;
  down.project_down = true;
  wf.on_reply(100.0, req, down, f.states[0], f.log);
  // And a delivered reply (even "down") clears the retry backoff while the
  // project-down backoff takes over.
  EXPECT_DOUBLE_EQ(f.states[0].rpc_retry_backoff_len, 0.0);
  EXPECT_DOUBLE_EQ(f.states[0].project_backoff_len, WorkFetch::kBackoffMin);
}

TEST(WorkFetch, SuccessfulReplyResetsAllBackoffs) {
  Fixture f;
  f.add_project("a", 100.0);
  WorkFetch wf(f.host, f.prefs, f.policy);
  WorkRequest req;
  req.req_seconds[ProcType::kCpu] = 100.0;
  RpcReply empty;
  empty.no_jobs_for[ProcType::kCpu] = true;
  wf.on_reply(0.0, req, empty, f.states[0], f.log);
  wf.on_reply_lost(10.0, f.states[0], f.log);
  RpcReply down;
  down.project_down = true;
  wf.on_reply(20.0, req, down, f.states[0], f.log);
  ASSERT_GT(f.states[0].type_backoff_len[ProcType::kCpu], 0.0);
  ASSERT_GT(f.states[0].project_backoff_len, 0.0);

  RpcReply withjob;
  Result r;
  r.usage = ResourceUsage::cpu(1.0);
  withjob.jobs.push_back(r);
  wf.on_reply(2000.0, req, withjob, f.states[0], f.log);
  EXPECT_DOUBLE_EQ(f.states[0].type_backoff_len[ProcType::kCpu], 0.0);
  EXPECT_DOUBLE_EQ(f.states[0].type_backoff_until[ProcType::kCpu], 0.0);
  EXPECT_DOUBLE_EQ(f.states[0].project_backoff_len, 0.0);
  EXPECT_DOUBLE_EQ(f.states[0].rpc_retry_backoff_len, 0.0);
}

TEST(WorkFetch, RespectsMinRpcInterval) {
  Fixture f;
  f.policy.fetch = FetchPolicy::kHysteresis;
  f.add_project("a", 100.0);
  f.rr.saturated[ProcType::kCpu] = 0.0;
  f.rr.shortfall[ProcType::kCpu] = 4000.0;
  f.states[0].next_allowed_rpc = 500.0;
  const auto acct = f.make_acct();
  EXPECT_FALSE(f.choose(100.0, acct).fetch());
  EXPECT_TRUE(f.choose(500.0, acct).fetch());
}

TEST(WorkFetch, SuppressionSkipsEndangeredProject) {
  Fixture f;
  f.policy.fetch = FetchPolicy::kHysteresis;
  f.policy.fetch_deadline_suppression = true;
  f.add_project("a", 100.0);
  f.rr.saturated[ProcType::kCpu] = 0.0;
  f.rr.shortfall[ProcType::kCpu] = 4000.0;
  f.endangered[0][ProcType::kCpu] = true;
  const auto acct = f.make_acct();
  EXPECT_FALSE(f.choose(0.0, acct).fetch());
  f.policy.fetch_deadline_suppression = false;
  EXPECT_TRUE(f.choose(0.0, acct).fetch());
}

TEST(WorkFetch, GpuOnlyProjectNotAskedForCpu) {
  Fixture f;
  f.host = HostInfo::cpu_gpu(4, 1e9, 1, 10e9);
  f.policy.fetch = FetchPolicy::kHysteresis;
  f.add_project("gpu_only", 100.0, /*cpu=*/false, /*gpu=*/true);
  f.rr.saturated[ProcType::kCpu] = 0.0;
  f.rr.shortfall[ProcType::kCpu] = 4000.0;
  f.rr.saturated[ProcType::kNvidia] = 0.0;
  f.rr.shortfall[ProcType::kNvidia] = 2000.0;
  const auto acct = f.make_acct();
  const auto d = f.choose(0.0, acct);
  ASSERT_TRUE(d.fetch());
  EXPECT_DOUBLE_EQ(d.request.req_seconds[ProcType::kCpu], 0.0);
  EXPECT_DOUBLE_EQ(d.request.req_seconds[ProcType::kNvidia], 2000.0);
}

TEST(WorkFetch, RequestCarriesEstimatedDelay) {
  Fixture f;
  f.policy.fetch = FetchPolicy::kHysteresis;
  f.add_project("a", 100.0);
  f.rr.saturated[ProcType::kCpu] = 700.0;
  f.rr.shortfall[ProcType::kCpu] = 4000.0;
  const auto acct = f.make_acct();
  const auto d = f.choose(0.0, acct);
  ASSERT_TRUE(d.fetch());
  EXPECT_DOUBLE_EQ(d.request.est_delay[ProcType::kCpu], 700.0);
}

TEST(WorkFetch, BackoffDoublesOnRepeatedEmptyReplies) {
  Fixture f;
  f.add_project("a", 100.0);
  WorkFetch wf(f.host, f.prefs, f.policy);
  WorkRequest req;
  req.req_seconds[ProcType::kCpu] = 100.0;
  RpcReply empty;
  empty.no_jobs_for[ProcType::kCpu] = true;

  wf.on_reply(0.0, req, empty, f.states[0], f.log);
  const double first = f.states[0].type_backoff_len[ProcType::kCpu];
  EXPECT_DOUBLE_EQ(first, WorkFetch::kBackoffMin);
  wf.on_reply(first, req, empty, f.states[0], f.log);
  EXPECT_DOUBLE_EQ(f.states[0].type_backoff_len[ProcType::kCpu], 2.0 * first);
}

TEST(WorkFetch, BackoffCappedAtMax) {
  Fixture f;
  f.add_project("a", 100.0);
  WorkFetch wf(f.host, f.prefs, f.policy);
  WorkRequest req;
  req.req_seconds[ProcType::kCpu] = 100.0;
  RpcReply empty;
  empty.no_jobs_for[ProcType::kCpu] = true;
  for (int i = 0; i < 20; ++i) wf.on_reply(i * 1.0, req, empty, f.states[0], f.log);
  EXPECT_DOUBLE_EQ(f.states[0].type_backoff_len[ProcType::kCpu],
                   WorkFetch::kBackoffMax);
}

TEST(WorkFetch, BackoffClearedByReceivingJobs) {
  Fixture f;
  f.add_project("a", 100.0);
  WorkFetch wf(f.host, f.prefs, f.policy);
  WorkRequest req;
  req.req_seconds[ProcType::kCpu] = 100.0;
  RpcReply empty;
  empty.no_jobs_for[ProcType::kCpu] = true;
  wf.on_reply(0.0, req, empty, f.states[0], f.log);
  EXPECT_GT(f.states[0].type_backoff_until[ProcType::kCpu], 0.0);

  RpcReply withjob;
  Result r;
  r.usage = ResourceUsage::cpu(1.0);
  withjob.jobs.push_back(r);
  wf.on_reply(10.0, req, withjob, f.states[0], f.log);
  EXPECT_DOUBLE_EQ(f.states[0].type_backoff_until[ProcType::kCpu], 0.0);
  EXPECT_DOUBLE_EQ(f.states[0].type_backoff_len[ProcType::kCpu], 0.0);
}

TEST(WorkFetch, ProjectDownBackoffGrowsAndResets) {
  Fixture f;
  f.add_project("a", 100.0);
  WorkFetch wf(f.host, f.prefs, f.policy);
  WorkRequest req;
  RpcReply down;
  down.project_down = true;
  wf.on_reply(0.0, req, down, f.states[0], f.log);
  EXPECT_DOUBLE_EQ(f.states[0].project_backoff_len, WorkFetch::kBackoffMin);
  EXPECT_GE(f.states[0].next_allowed_rpc, WorkFetch::kBackoffMin);
  wf.on_reply(600.0, req, down, f.states[0], f.log);
  EXPECT_DOUBLE_EQ(f.states[0].project_backoff_len, 2 * WorkFetch::kBackoffMin);

  RpcReply up;  // any non-down reply resets the project-level backoff
  wf.on_reply(1200.0, req, up, f.states[0], f.log);
  EXPECT_DOUBLE_EQ(f.states[0].project_backoff_len, 0.0);
}

TEST(WorkFetch, OnRpcSentEnforcesSpacing) {
  Fixture f;
  f.add_project("a", 100.0);
  WorkFetch wf(f.host, f.prefs, f.policy);
  wf.on_rpc_sent(100.0, f.states[0]);
  EXPECT_DOUBLE_EQ(f.states[0].next_allowed_rpc,
                   100.0 + f.prefs.min_rpc_interval);
}

TEST(WorkFetch, GpuShortfallPreferredOverCpu) {
  Fixture f;
  f.host = HostInfo::cpu_gpu(4, 1e9, 1, 10e9);
  f.policy.fetch = FetchPolicy::kHysteresis;
  f.add_project("both", 100.0, true, true);
  f.rr.saturated[ProcType::kCpu] = 0.0;
  f.rr.shortfall[ProcType::kCpu] = 4000.0;
  f.rr.saturated[ProcType::kNvidia] = 0.0;
  f.rr.shortfall[ProcType::kNvidia] = 1000.0;
  const auto acct = f.make_acct();
  const auto d = f.choose(0.0, acct);
  ASSERT_TRUE(d.fetch());
  // One RPC covers both triggered types for the chosen project.
  EXPECT_GT(d.request.req_seconds[ProcType::kNvidia], 0.0);
  EXPECT_GT(d.request.req_seconds[ProcType::kCpu], 0.0);
}

}  // namespace
}  // namespace bce
