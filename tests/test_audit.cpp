// Tests for the debug-mode simulation auditor (sim/audit.hpp).
//
// Two halves: (1) corruption tests hand each check a deliberately broken
// piece of state and assert it throws AuditFailure with a useful message;
// (2) end-to-end tests install an auditor via EmulationOptions::auditor
// and assert that real emulations — clean, faulty, every policy pairing —
// pass every invariant while actually exercising the checks
// (checks_run() > 0), including concurrently from several threads.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "client/accounting.hpp"
#include "client/rr_sim.hpp"
#include "core/emulator.hpp"
#include "core/scenario_io.hpp"
#include "host/host_info.hpp"
#include "host/preferences.hpp"
#include "server/request.hpp"
#include "sim/audit.hpp"

namespace bce {
namespace {

std::string failure_message(const std::function<void()>& f) {
  try {
    f();
  } catch (const AuditFailure& e) {
    return e.what();
  }
  return "";
}

// ---- event ordering -------------------------------------------------------

TEST(Audit, EventTimestampsMustBeMonotonic) {
  InvariantAuditor a;
  a.check_event_monotonic(10.0);
  a.check_event_monotonic(10.0);  // equal timestamps are fine
  a.check_event_monotonic(11.5);
  EXPECT_THROW(a.check_event_monotonic(5.0), AuditFailure);
  const std::string msg =
      failure_message([&] { a.check_event_monotonic(5.0); });
  EXPECT_NE(msg.find("monotonic"), std::string::npos) << msg;
}

TEST(Audit, ResetForgetsTheEventClock) {
  InvariantAuditor a;
  a.check_event_monotonic(100.0);
  a.reset();
  EXPECT_NO_THROW(a.check_event_monotonic(0.0));
}

// ---- RR-sim cache version -------------------------------------------------

TEST(Audit, StateVersionMayNeverRegress) {
  InvariantAuditor a;
  a.check_state_version(3);
  a.check_state_version(3);  // unchanged state re-checked: fine
  a.check_state_version(7);
  EXPECT_THROW(a.check_state_version(6), AuditFailure);
}

TEST(Audit, ResetForgetsTheStateVersion) {
  InvariantAuditor a;
  a.check_state_version(42);
  a.reset();
  EXPECT_NO_THROW(a.check_state_version(1));
}

// ---- debt sums ------------------------------------------------------------

TEST(Audit, BalancedDebtsPass) {
  const HostInfo h = HostInfo::cpu_only(1, 1e9);
  Accounting acct(h, {0.5, 0.5}, kSecondsPerDay);
  PerProc<double> p0_used{};
  p0_used[ProcType::kCpu] = 100.0;
  PerProc<bool> on{};
  on[ProcType::kCpu] = true;
  const std::vector<PerProc<bool>> runnable = {on, on};
  acct.charge(100.0, 100.0, {p0_used, PerProc<double>{}}, runnable);

  InvariantAuditor a;
  EXPECT_NO_THROW(a.check_debt_sums(acct, runnable));
  EXPECT_GT(a.checks_run(), 0U);
}

TEST(Audit, CorruptedDebtSumFires) {
  // Same accounting state as above (debts are +d / -d, |d| ~ tens of
  // seconds), but the caller hands the auditor a runnable mask claiming
  // only project 0 is eligible — exactly what a bookkeeping bug between
  // the scheduler's runnable set and the accounting charge looks like.
  // The eligible "sum" is then a lone nonzero debt and must fire.
  const HostInfo h = HostInfo::cpu_only(1, 1e9);
  Accounting acct(h, {0.5, 0.5}, kSecondsPerDay);
  PerProc<double> p0_used{};
  p0_used[ProcType::kCpu] = 100.0;
  PerProc<bool> on{};
  on[ProcType::kCpu] = true;
  acct.charge(100.0, 100.0, {p0_used, PerProc<double>{}}, {on, on});
  ASSERT_LT(acct.debt(0, ProcType::kCpu), -1.0);  // far beyond tolerance

  InvariantAuditor a;
  const std::vector<PerProc<bool>> corrupt = {on, PerProc<bool>{}};
  EXPECT_THROW(a.check_debt_sums(acct, corrupt), AuditFailure);
  const std::string msg =
      failure_message([&] { a.check_debt_sums(acct, corrupt); });
  EXPECT_NE(msg.find("short-term"), std::string::npos) << msg;
}

TEST(Audit, RecIsNonNegativeAfterCharges) {
  const HostInfo h = HostInfo::cpu_only(2, 1e9);
  Accounting acct(h, {0.7, 0.3}, kSecondsPerDay);
  PerProc<bool> on{};
  on[ProcType::kCpu] = true;
  PerProc<double> u{};
  u[ProcType::kCpu] = 60.0;
  for (int i = 0; i < 5; ++i) {
    acct.charge(60.0 * (i + 1), 60.0, {u, u}, {on, on});
  }
  InvariantAuditor a;
  EXPECT_NO_THROW(a.check_rec_nonneg(acct));
}

// ---- RR-sim output --------------------------------------------------------

RrSimOutput consistent_output(const HostInfo& host, const Preferences& prefs) {
  // An idle host: zero busy time, the whole window is shortfall.
  RrSimOutput rr;
  for (const auto t : kAllProcTypes) {
    rr.shortfall[t] = host.count[t] * prefs.max_queue;
    rr.shortfall_min[t] = host.count[t] * prefs.min_queue;
    rr.idle_instances_now[t] = host.count[t];
  }
  return rr;
}

TEST(Audit, ConsistentRrOutputPasses) {
  const HostInfo h = HostInfo::cpu_only(2, 1e9);
  const Preferences prefs;
  InvariantAuditor a;
  EXPECT_NO_THROW(
      a.check_rr_output(consistent_output(h, prefs), h, prefs, 0.0));
}

TEST(Audit, NegativeShortfallFires) {
  const HostInfo h = HostInfo::cpu_only(2, 1e9);
  const Preferences prefs;
  RrSimOutput rr = consistent_output(h, prefs);
  rr.shortfall[ProcType::kCpu] = -1.0;
  InvariantAuditor a;
  EXPECT_THROW(a.check_rr_output(rr, h, prefs, 0.0), AuditFailure);
}

TEST(Audit, BrokenInstanceSecondConservationFires) {
  // busy + shortfall must equal the window capacity; leak one instance-
  // hour of busy time and the conservation check catches it.
  const HostInfo h = HostInfo::cpu_only(2, 1e9);
  const Preferences prefs;
  RrSimOutput rr = consistent_output(h, prefs);
  rr.busy_inst_seconds[ProcType::kCpu] = 3600.0;
  InvariantAuditor a;
  const std::string msg = failure_message(
      [&] { a.check_rr_output(rr, h, prefs, 0.0); });
  EXPECT_NE(msg.find("conserve"), std::string::npos) << msg;
}

TEST(Audit, SaturationBeyondSimulatedSpanFires) {
  const HostInfo h = HostInfo::cpu_only(1, 1e9);
  const Preferences prefs;
  RrSimOutput rr = consistent_output(h, prefs);
  rr.span = 100.0;
  rr.saturated[ProcType::kCpu] = 200.0;
  InvariantAuditor a;
  EXPECT_THROW(a.check_rr_output(rr, h, prefs, 0.0), AuditFailure);
}

// ---- work-fetch decisions -------------------------------------------------

TEST(Audit, NegativeWorkRequestFires) {
  const HostInfo h = HostInfo::cpu_only(1, 1e9);
  WorkRequest req;
  req.req_seconds[ProcType::kCpu] = -10.0;
  InvariantAuditor a;
  EXPECT_THROW(a.check_fetch_decision(req, h), AuditFailure);
}

TEST(Audit, RequestForAbsentProcessorTypeFires) {
  const HostInfo h = HostInfo::cpu_only(1, 1e9);  // no GPUs
  WorkRequest req;
  req.req_seconds[ProcType::kNvidia] = 3600.0;
  InvariantAuditor a;
  EXPECT_THROW(a.check_fetch_decision(req, h), AuditFailure);
}

TEST(Audit, NonPositiveDurationCorrectionFires) {
  const HostInfo h = HostInfo::cpu_only(1, 1e9);
  WorkRequest req;
  req.req_seconds[ProcType::kCpu] = 3600.0;
  req.duration_correction = 0.0;
  InvariantAuditor a;
  EXPECT_THROW(a.check_fetch_decision(req, h), AuditFailure);
}

TEST(Audit, WellFormedWorkRequestPasses) {
  const HostInfo h = HostInfo::cpu_only(1, 1e9);
  WorkRequest req;
  req.req_seconds[ProcType::kCpu] = 3600.0;
  req.req_instances[ProcType::kCpu] = 1.0;
  InvariantAuditor a;
  EXPECT_NO_THROW(a.check_fetch_decision(req, h));
}

// ---- metrics --------------------------------------------------------------

TEST(Audit, WasteExceedingWorkFires) {
  Metrics m;
  m.available_flops = 1e15;
  m.used_flops = 1e12;
  m.wasted_flops = 1e13;  // more waste than work performed
  InvariantAuditor a;
  EXPECT_THROW(a.check_metrics(m), AuditFailure);
}

TEST(Audit, NonFiniteUsedFlopsFires) {
  Metrics m;
  m.available_flops = 1e12;
  m.used_flops = std::numeric_limits<double>::quiet_NaN();
  InvariantAuditor a;
  EXPECT_THROW(a.check_metrics(m), AuditFailure);
}

TEST(Audit, FailureWasteIsSubsetOfWaste) {
  Metrics m;
  m.available_flops = 1e15;
  m.used_flops = 1e14;
  m.wasted_flops = 1e12;
  m.failure_wasted_flops = 2e12;
  InvariantAuditor a;
  EXPECT_THROW(a.check_metrics(m), AuditFailure);
}

TEST(Audit, ConsistentMetricsPass) {
  Metrics m;
  m.available_flops = 1e15;
  m.used_flops = 1e14;
  m.wasted_flops = 1e12;
  m.failure_wasted_flops = 1e11;
  InvariantAuditor a;
  EXPECT_NO_THROW(a.check_metrics(m));
}

// ---- end to end -----------------------------------------------------------

Scenario shipped(const std::string& name, double days) {
  Scenario sc =
      load_scenario_file(std::string(BCE_SOURCE_DIR) + "/scenarios/" + name);
  sc.duration = days * kSecondsPerDay;
  return sc;
}

TEST(AuditEndToEnd, CleanRunSatisfiesEveryInvariant) {
  InvariantAuditor auditor;
  EmulationOptions opt;
  opt.auditor = &auditor;
  const EmulationResult res = emulate(shipped("scenario1.txt", 2.0), opt);
  EXPECT_GT(res.metrics.n_jobs_completed, 0);
  EXPECT_GT(auditor.checks_run(), 100U);
}

TEST(AuditEndToEnd, EveryPolicyPairingPassesAudit) {
  for (const char* sched : {"JS_WRR", "JS_LOCAL", "JS_GLOBAL", "JS_EDF"}) {
    for (const char* fetch : {"JF_ORIG", "JF_HYSTERESIS", "JF_RR"}) {
      InvariantAuditor auditor;
      EmulationOptions opt;
      opt.auditor = &auditor;
      opt.policy.sched_by_name = sched;
      opt.policy.fetch_by_name = fetch;
      EXPECT_NO_THROW(emulate(shipped("scenario2.txt", 1.0), opt))
          << sched << "+" << fetch;
      EXPECT_GT(auditor.checks_run(), 0U) << sched << "+" << fetch;
    }
  }
}

TEST(AuditEndToEnd, FaultyRunPassesAudit) {
  // Fault injection perturbs every subsystem the auditor watches (lost
  // RPCs, crashes rewinding jobs, failure-wasted FLOPs); the invariants
  // must hold there too.
  InvariantAuditor auditor;
  EmulationOptions opt;
  opt.auditor = &auditor;
  const EmulationResult res = emulate(shipped("faulty.txt", 2.0), opt);
  EXPECT_GE(res.metrics.failure_wasted_flops, 0.0);
  EXPECT_GT(auditor.checks_run(), 0U);
}

TEST(AuditEndToEnd, AuditorIsReusableAcrossRuns) {
  InvariantAuditor auditor;
  EmulationOptions opt;
  opt.auditor = &auditor;
  emulate(shipped("scenario1.txt", 1.0), opt);
  const std::uint64_t after_first = auditor.checks_run();
  // Without the emulator's reset() this would trip the monotonic-event
  // check: the second run's clock restarts at zero.
  EXPECT_NO_THROW(emulate(shipped("scenario1.txt", 1.0), opt));
  EXPECT_GT(auditor.checks_run(), after_first);
}

TEST(AuditEndToEnd, AuditedRunsMatchUnauditedResults) {
  // The auditor only observes; figures of merit must be bit-identical
  // with and without it.
  const Scenario sc = shipped("scenario3.txt", 1.0);
  const EmulationResult plain = emulate(sc);
  InvariantAuditor auditor;
  EmulationOptions opt;
  opt.auditor = &auditor;
  const EmulationResult audited = emulate(sc, opt);
  EXPECT_EQ(plain.metrics.used_flops, audited.metrics.used_flops);
  EXPECT_EQ(plain.metrics.wasted_flops, audited.metrics.wasted_flops);
  EXPECT_EQ(plain.metrics.n_jobs_completed, audited.metrics.n_jobs_completed);
  EXPECT_EQ(plain.metrics.n_preemptions, audited.metrics.n_preemptions);
}

TEST(AuditEndToEnd, ConcurrentAuditedEmulations) {
  // One auditor per emulation is the documented contract; four threads
  // exercise it (and give TSan something to chew on).
  std::vector<std::thread> threads;
  std::vector<std::uint64_t> counts(4, 0);
  threads.reserve(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    threads.emplace_back([i, &counts] {
      InvariantAuditor auditor;
      EmulationOptions opt;
      opt.auditor = &auditor;
      Scenario sc = shipped("scenario4.txt", 0.5);
      sc.seed = i + 1;
      emulate(sc, opt);
      counts[i] = auditor.checks_run();
    });
  }
  for (auto& t : threads) t.join();
  for (const auto c : counts) EXPECT_GT(c, 0U);
}

}  // namespace
}  // namespace bce
