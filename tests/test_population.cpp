// Tests for the Monte-Carlo scenario population sampler (core/population).

#include <gtest/gtest.h>

#include "core/emulator.hpp"
#include "core/population.hpp"

namespace bce {
namespace {

TEST(Population, SampledScenariosValidate) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 50; ++i) {
    const Scenario sc = sample_scenario(rng);
    std::string err;
    EXPECT_TRUE(sc.validate(&err)) << "sample " << i << ": " << err;
  }
}

TEST(Population, DeterministicGivenRngState) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  const Scenario sa = sample_scenario(a);
  const Scenario sb = sample_scenario(b);
  EXPECT_EQ(sa.projects.size(), sb.projects.size());
  EXPECT_EQ(sa.host.count[ProcType::kCpu], sb.host.count[ProcType::kCpu]);
  EXPECT_DOUBLE_EQ(sa.host.flops_per_instance[ProcType::kCpu],
                   sb.host.flops_per_instance[ProcType::kCpu]);
  EXPECT_EQ(sa.seed, sb.seed);
}

TEST(Population, SamplesVary) {
  Xoshiro256 rng(7);
  const Scenario a = sample_scenario(rng);
  const Scenario b = sample_scenario(rng);
  EXPECT_NE(a.seed, b.seed);
}

class PopulationRanges : public ::testing::TestWithParam<int> {};

TEST_P(PopulationRanges, RespectsParameterRanges) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()));
  PopulationParams pp;
  const Scenario sc = sample_scenario(rng, pp);

  EXPECT_GE(sc.host.count[ProcType::kCpu], pp.min_cpus);
  EXPECT_LE(sc.host.count[ProcType::kCpu], pp.max_cpus);
  EXPECT_GE(sc.host.flops_per_instance[ProcType::kCpu], pp.cpu_flops_lo);
  EXPECT_LE(sc.host.flops_per_instance[ProcType::kCpu], pp.cpu_flops_hi);
  EXPECT_GE(static_cast<int>(sc.projects.size()), pp.min_projects);
  EXPECT_LE(static_cast<int>(sc.projects.size()), pp.max_projects);
  EXPECT_GE(sc.prefs.max_queue, sc.prefs.min_queue);
  EXPECT_DOUBLE_EQ(sc.duration, pp.duration);

  for (const auto t : {ProcType::kNvidia, ProcType::kAti}) {
    if (sc.host.count[t] > 0) {
      EXPECT_LE(sc.host.count[t], pp.max_gpus);
      const double speedup = sc.host.flops_per_instance[t] /
                             sc.host.flops_per_instance[ProcType::kCpu];
      EXPECT_GE(speedup, pp.gpu_speedup_lo * 0.999);
      EXPECT_LE(speedup, pp.gpu_speedup_hi * 1.001);
    }
  }
  for (const auto& p : sc.projects) {
    for (const auto& jc : p.job_classes) {
      const double runtime = jc.est_runtime(sc.host);
      EXPECT_GE(runtime, pp.job_seconds_lo * 0.999);
      EXPECT_LE(runtime, pp.job_seconds_hi * 1.001);
      EXPECT_GE(jc.latency_bound / runtime, pp.latency_factor_lo * 0.999);
      EXPECT_LE(jc.latency_bound / runtime, pp.latency_factor_hi * 1.001);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PopulationRanges, ::testing::Range(1, 16));

TEST(Population, SampledScenarioEmulates) {
  Xoshiro256 rng(123);
  PopulationParams pp;
  pp.duration = 0.1 * kSecondsPerDay;
  const Scenario sc = sample_scenario(rng, pp);
  const EmulationResult res = emulate(sc);
  EXPECT_GE(res.metrics.available_flops, 0.0);
}

}  // namespace
}  // namespace bce
