// Tests for the §6.2 policy alternatives: JS_EDF (pure earliest-deadline-
// first) and JF_RR (round-robin / least-recently-asked fetch).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "client/job_scheduler.hpp"
#include "client/work_fetch.hpp"
#include "core/emulator.hpp"
#include "core/paper_scenarios.hpp"

namespace bce {
namespace {

TEST(JsEdf, OrdersEverythingByDeadline) {
  const HostInfo host = HostInfo::cpu_only(1, 1e9);
  Preferences prefs;
  PolicyConfig policy;
  policy.sched = JobSchedPolicy::kEdfOnly;
  JobScheduler sched(host, prefs, policy);
  Accounting acct(host, {0.9, 0.1}, kSecondsPerDay);
  Trace log;

  std::vector<Result> jobs(2);
  // High-share project's job has the LATER deadline; pure EDF must ignore
  // shares and run the other one.
  jobs[0].id = 0;
  jobs[0].project = 0;
  jobs[0].usage = ResourceUsage::cpu(1.0);
  jobs[0].flops_est = jobs[0].flops_total = 1000e9;
  jobs[0].deadline = 9000.0;
  jobs[1].id = 1;
  jobs[1].project = 1;
  jobs[1].usage = ResourceUsage::cpu(1.0);
  jobs[1].flops_est = jobs[1].flops_total = 1000e9;
  jobs[1].deadline = 3000.0;
  std::vector<Result*> ptrs = {&jobs[0], &jobs[1]};

  const auto out = sched.schedule(0.0, ptrs, acct, true, true, log);
  ASSERT_EQ(out.to_run.size(), 1u);
  EXPECT_EQ(out.to_run[0]->id, 1);
}

TEST(JsEdf, MinimizesWasteOnLowSlackScenario) {
  Scenario sc = paper_scenario1(1300.0);
  sc.duration = 2.0 * kSecondsPerDay;
  EmulationOptions wrr;
  wrr.policy.sched = JobSchedPolicy::kWrr;
  wrr.policy.fetch = FetchPolicy::kOrig;
  EmulationOptions edf;
  edf.policy.sched = JobSchedPolicy::kEdfOnly;
  edf.policy.fetch = FetchPolicy::kOrig;
  const Metrics mw = emulate(sc, wrr).metrics;
  const Metrics me = emulate(sc, edf).metrics;
  EXPECT_LT(me.wasted_fraction(), mw.wasted_fraction());
}

TEST(JsEdf, TramplesSharesWhenDeadlinesSkew) {
  // P1's jobs always have tighter deadlines: pure EDF starves P2 even at
  // equal shares.
  Scenario sc = paper_scenario1(1600.0);
  sc.duration = 2.0 * kSecondsPerDay;
  EmulationOptions edf;
  edf.policy.sched = JobSchedPolicy::kEdfOnly;
  edf.policy.fetch = FetchPolicy::kOrig;
  EmulationOptions global;
  global.policy.sched = JobSchedPolicy::kGlobal;
  global.policy.fetch = FetchPolicy::kOrig;
  const Metrics me = emulate(sc, edf).metrics;
  const Metrics mg = emulate(sc, global).metrics;
  // Tight-deadline project gets more than its share under pure EDF than
  // under the share-aware policy.
  EXPECT_GE(me.usage_fraction[0] + 0.02, mg.usage_fraction[0]);
}

TEST(JfRr, SelectsLeastRecentlyAskedProject) {
  const HostInfo host = HostInfo::cpu_only(2, 1e9);
  Preferences prefs;
  prefs.min_queue = 1000.0;
  prefs.max_queue = 3000.0;
  PolicyConfig policy;
  policy.fetch = FetchPolicy::kRoundRobin;
  WorkFetch wf(host, prefs, policy);
  Trace log;

  std::vector<ProjectConfig> projects(3);
  std::vector<const ProjectConfig*> cfgs;
  std::vector<ProjectFetchState> states(3);
  std::vector<PerProc<bool>> endangered(3);
  for (int i = 0; i < 3; ++i) {
    projects[static_cast<std::size_t>(i)].name = "p" + std::to_string(i);
    JobClass jc;
    jc.usage = ResourceUsage::cpu(1.0);
    jc.flops_est = 1e12;
    projects[static_cast<std::size_t>(i)].job_classes.push_back(jc);
  }
  for (const auto& p : projects) cfgs.push_back(&p);
  states[0].last_work_rpc = 500.0;
  states[1].last_work_rpc = 100.0;  // least recent
  states[2].last_work_rpc = 300.0;

  RrSimOutput rr;
  rr.saturated[ProcType::kCpu] = 0.0;
  rr.shortfall[ProcType::kCpu] = 4000.0;
  Accounting acct(host, {1.0 / 3, 1.0 / 3, 1.0 / 3}, kSecondsPerDay);
  const auto d = wf.choose(1000.0, rr, acct, cfgs, states, endangered, log);
  ASSERT_TRUE(d.fetch());
  EXPECT_EQ(d.project, 1);
}

TEST(JfRr, RotatesThroughAllProjectsEndToEnd) {
  // Fetches are rare under the hysteresis trigger (the queue buffers half
  // a day of work), so covering all 20 projects takes several days.
  Scenario sc = paper_scenario4();
  sc.duration = 8.0 * kSecondsPerDay;
  EmulationOptions opt;
  opt.policy.sched = JobSchedPolicy::kGlobal;
  opt.policy.fetch = FetchPolicy::kRoundRobin;
  const EmulationResult res = emulate(sc, opt);
  // Every project was fetched from at least once.
  std::set<ProjectId> seen;
  for (const auto& j : res.jobs) seen.insert(j.project);
  EXPECT_EQ(seen.size(), sc.projects.size());
}

TEST(JfRr, SameRpcLoadAsHysteresis) {
  Scenario sc = paper_scenario4();
  sc.duration = 2.0 * kSecondsPerDay;
  EmulationOptions hyst;
  hyst.policy.fetch = FetchPolicy::kHysteresis;
  EmulationOptions rrf;
  rrf.policy.fetch = FetchPolicy::kRoundRobin;
  const Metrics mh = emulate(sc, hyst).metrics;
  const Metrics mr = emulate(sc, rrf).metrics;
  // Same trigger, same request size: RPC counts land in the same regime
  // (well below one per job).
  EXPECT_LT(mr.rpcs_per_job(), 0.5);
  EXPECT_LT(mh.rpcs_per_job(), 0.5);
}

TEST(PolicyNames, CoverAllVariants) {
  PolicyConfig p;
  p.sched = JobSchedPolicy::kEdfOnly;
  EXPECT_STREQ(p.sched_name(), "JS_EDF");
  p.fetch = FetchPolicy::kRoundRobin;
  EXPECT_STREQ(p.fetch_name(), "JF_RR");
}

}  // namespace
}  // namespace bce
