// The sharded supervisor's resilience invariants (fleet/supervisor.hpp,
// docs/fleet.md), pinned end to end with real worker subprocesses — this
// test binary doubles as its own worker via maybe_run_shard_worker in
// main(), exactly like the bce CLI and the study drivers.
//
//   - subprocess execution is byte-identical to the in-process reference
//   - a worker killed mid-shard resumes from checkpoint: byte-identical
//   - a stalled worker is detected by heartbeat timeout and the retry
//     is byte-identical
//   - retries exhausted + partial_ok degrades with exact coverage
//   - retries exhausted without partial_ok throws ShardFailedError
//   - an unlaunchable worker binary surfaces as a failure, not a hang

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/bce.hpp"
#include "fleet/shard_worker.hpp"
#include "fleet/supervisor.hpp"

namespace {

using namespace bce;

std::vector<std::uint8_t> wire_bytes(const Metrics& m) {
  StateWriter w;
  save_metrics(w, m);
  return w.payload();
}

std::vector<ShardTask> make_tasks(double days = 0.1) {
  Scenario sc = paper_scenario2();
  sc.duration = days * kSecondsPerDay;
  return make_replicated_shard_tasks(sc, {}, /*n_hosts=*/4,
                                     /*hosts_per_shard=*/2);
}

/// Baseline both halves of every identity below: the sequential
/// in-process fold with no supervision and no faults.
ShardedResult inline_reference(double days = 0.1) {
  return run_sharded(make_tasks(days), {});
}

void remove_checkpoints(const std::string& dir, int n_shards) {
  for (int i = 0; i < n_shards; ++i) {
    std::remove((dir + "/shard-" + std::to_string(i) + ".bcsp").c_str());
  }
}

TEST(Supervisor, SubprocessMatchesInProcessBitwise) {
  const ShardedResult inline_r = inline_reference();
  SupervisorConfig sup;
  sup.n_workers = 2;
  const ShardedResult sub_r = run_sharded(make_tasks(), sup);
  ASSERT_TRUE(sub_r.complete());
  EXPECT_EQ(wire_bytes(sub_r.merged), wire_bytes(inline_r.merged));
  EXPECT_EQ(sub_r.hosts_done, 4u);
  for (const auto& s : sub_r.shards) {
    EXPECT_EQ(s.state, ShardState::kDone);
    EXPECT_EQ(s.attempts, 1);
  }
}

TEST(Supervisor, KilledWorkerResumesByteIdentical) {
  const ShardedResult inline_r = inline_reference();
  const std::string dir = ::testing::TempDir() + "sup_kill_cp";
  ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);

  SupervisorConfig sup;
  sup.n_workers = 2;
  sup.checkpoint_dir = dir;
  sup.backoff_initial = 0.05;
  sup.harness_faults = parse_harness_faults("kill:1@1");
  const ShardedResult r = run_sharded(make_tasks(), sup);

  ASSERT_TRUE(r.complete());
  EXPECT_EQ(wire_bytes(r.merged), wire_bytes(inline_r.merged));
  EXPECT_EQ(r.shards[1].attempts, 2) << "kill must cost exactly one retry";
  EXPECT_EQ(r.shards[0].attempts, 1);
  remove_checkpoints(dir, 2);
}

TEST(Supervisor, StalledWorkerTimesOutAndResumesByteIdentical) {
  const ShardedResult inline_r = inline_reference();
  const std::string dir = ::testing::TempDir() + "sup_stall_cp";
  ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);

  SupervisorConfig sup;
  sup.n_workers = 2;
  sup.checkpoint_dir = dir;
  sup.backoff_initial = 0.05;
  sup.heartbeat_timeout = 0.5;
  sup.harness_faults = parse_harness_faults("stall:0@1");
  const ShardedResult r = run_sharded(make_tasks(), sup);

  ASSERT_TRUE(r.complete());
  EXPECT_EQ(wire_bytes(r.merged), wire_bytes(inline_r.merged));
  EXPECT_EQ(r.shards[0].attempts, 2) << "stall must cost exactly one retry";
  remove_checkpoints(dir, 2);
}

TEST(Supervisor, RetriesExhaustedPartialOkKeepsExactCoverage) {
  // Shard 1 is killed before writing any checkpoint and gets no retries,
  // so its hosts are lost; shard 0's figures must still come through and
  // the accounting must name exactly what was lost.
  SupervisorConfig sup;
  sup.n_workers = 2;
  sup.max_retries = 0;
  sup.partial_ok = true;
  sup.harness_faults = parse_harness_faults("kill:1@1");

  std::vector<ShardTask> tasks = make_tasks();
  // Host-boundary checkpoints without a path are impossible, so the kill
  // at "checkpoint 1" needs a checkpoint dir for the fault to fire.
  const std::string dir = ::testing::TempDir() + "sup_partial_cp";
  ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);
  sup.checkpoint_dir = dir;

  const ShardedResult r = run_sharded(tasks, sup);
  EXPECT_FALSE(r.complete());
  EXPECT_EQ(r.hosts_total, 4u);
  EXPECT_EQ(r.hosts_done, 2u);
  EXPECT_EQ(r.hosts_lost, 2u);
  EXPECT_EQ(r.shards[0].state, ShardState::kDone);
  EXPECT_EQ(r.shards[1].state, ShardState::kLost);
  EXPECT_FALSE(r.shards[1].error.empty());

  // Merged figures cover exactly shard 0: compare against running just
  // that shard inline.
  std::vector<ShardTask> first_only = {make_tasks()[0]};
  const ShardedResult only0 = run_sharded(first_only, {});
  EXPECT_EQ(wire_bytes(r.merged), wire_bytes(only0.merged));

  // The coverage table names every shard.
  const Table t = r.coverage_table();
  EXPECT_EQ(t.rows(), 2u);
  remove_checkpoints(dir, 2);
}

TEST(Supervisor, RetriesExhaustedWithoutPartialOkThrows) {
  SupervisorConfig sup;
  sup.n_workers = 2;
  sup.max_retries = 0;
  const std::string dir = ::testing::TempDir() + "sup_fail_cp";
  ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);
  sup.checkpoint_dir = dir;
  sup.harness_faults = parse_harness_faults("kill:0@1");
  try {
    (void)run_sharded(make_tasks(), sup);
    FAIL() << "lost shard did not throw";
  } catch (const ShardFailedError& e) {
    EXPECT_EQ(e.report().index, 0u);
    EXPECT_EQ(e.report().state, ShardState::kLost);
    EXPECT_NE(std::string(e.what()).find("shard 0"), std::string::npos)
        << e.what();
  }
  remove_checkpoints(dir, 2);
}

TEST(Supervisor, UnlaunchableWorkerFailsFast) {
  SupervisorConfig sup;
  sup.n_workers = 1;
  sup.max_retries = 0;
  sup.partial_ok = true;
  sup.backoff_initial = 0.01;
  sup.worker_exe = "/nonexistent/bce_worker_binary";
  const ShardedResult r = run_sharded(make_tasks(), sup);
  EXPECT_EQ(r.hosts_done, 0u);
  EXPECT_EQ(r.hosts_lost, 4u);
  for (const auto& s : r.shards) EXPECT_EQ(s.state, ShardState::kLost);
}

TEST(Supervisor, PopulationTasksCoverAllHostsOnce) {
  PopulationParams pp;
  pp.duration = 0.05 * kSecondsPerDay;
  const auto tasks = make_population_shard_tasks(pp, 10, 1, {}, 4);
  ASSERT_EQ(tasks.size(), 3u);
  EXPECT_EQ(tasks[0].first_host, 0u);
  EXPECT_EQ(tasks[0].n_hosts(), 4u);
  EXPECT_EQ(tasks[1].first_host, 4u);
  EXPECT_EQ(tasks[2].first_host, 8u);
  EXPECT_EQ(tasks[2].n_hosts(), 2u);

  // Shard boundaries must not change the sampled hosts: 10 hosts in one
  // shard merge to the same bytes as 4+4+2.
  const ShardedResult split = run_sharded(tasks, {});
  const ShardedResult mono =
      run_sharded(make_population_shard_tasks(pp, 10, 1, {}, 10), {});
  ASSERT_TRUE(split.complete());
  ASSERT_TRUE(mono.complete());
  // Note: identical bytes require the same fold shape; 4+4+2 vs 10 hosts
  // associate sums differently, so compare figures within FP tolerance.
  EXPECT_EQ(split.merged.n_jobs_completed, mono.merged.n_jobs_completed);
  EXPECT_NEAR(split.merged.available_flops, mono.merged.available_flops,
              1e-12 * mono.merged.available_flops);
  EXPECT_NEAR(split.merged.monotony, mono.merged.monotony,
              1e-12 * (1.0 + std::abs(mono.merged.monotony)));
}

}  // namespace

// The supervisor re-execs this binary with --bce-shard-worker as its
// worker processes; that mode must win before gtest sees the argv.
int main(int argc, char** argv) {
  if (const auto rc = bce::maybe_run_shard_worker(argc, argv)) return *rc;
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
