// End-to-end exit-code contract of the CLI's savestate surface
// (tools/bce_cli.cpp, docs/savestate.md):
//
//   bce run --load-state:  3 io, 4 bad magic, 5 bad version, 6 truncated,
//                          7 corrupt, 9 scenario/policy mismatch
//   bce determinism:       0 identical, 3 reports diverge (--seed2),
//                          plus --bisect divergence dumps
//
// The binary path arrives via BCE_BIN (tests/CMakeLists.txt). Each test
// drives the real binary on the shipped scenario files, so this is the
// scripting contract as a user sees it, not a library-level check.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace {

struct CliRun {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

CliRun run_cli(const std::string& args) {
  const std::string cmd = std::string(BCE_BIN) + " " + args + " 2>&1";
  CliRun r;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[512];
  while (std::fgets(buf, sizeof buf, pipe) != nullptr) r.output += buf;
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

std::string scenario(const std::string& name) {
  return std::string(BCE_SOURCE_DIR) + "/scenarios/" + name;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(is),
          std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream os(path, std::ios::binary);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class CliSavestate : public ::testing::Test {
 protected:
  // One shared save fixture for the whole suite (saving re-runs a day of
  // emulation; the rejection tests only need the bytes). The path is
  // per-process: ctest discovery runs every test in its own process, and
  // concurrent suite set-ups/tear-downs must not clobber each other.
  static void SetUpTestSuite() {
    path_ = new std::string(temp_path(
        "cli_savestate." + std::to_string(::getpid()) + ".bcss"));
    const CliRun r =
        run_cli("run " + scenario("scenario1.txt") + " --days 1 --save-at 0.5 "
                "--save-state " + *path_);
    ASSERT_EQ(r.exit_code, 0) << r.output;
    ASSERT_NE(r.output.find("savestate written to"), std::string::npos)
        << r.output;
  }
  static void TearDownTestSuite() {
    std::remove(path_->c_str());
    delete path_;
    path_ = nullptr;
  }

  static std::string* path_;
};

std::string* CliSavestate::path_ = nullptr;

TEST_F(CliSavestate, ResumeMatchesColdRun) {
  const CliRun cold =
      run_cli("run " + scenario("scenario1.txt") + " --days 1");
  const CliRun warm = run_cli("run " + scenario("scenario1.txt") +
                              " --days 1 --load-state " + *path_);
  ASSERT_EQ(cold.exit_code, 0) << cold.output;
  ASSERT_EQ(warm.exit_code, 0) << warm.output;
  EXPECT_NE(warm.output.find("resumed from"), std::string::npos)
      << warm.output;
  // Identical summaries: the resumed half reproduces the cold run exactly.
  const std::string tail =
      warm.output.substr(warm.output.find("scenario 'scenario1'"));
  EXPECT_EQ(cold.output, tail);
}

TEST_F(CliSavestate, MissingFileExits3) {
  const CliRun r = run_cli("run " + scenario("scenario1.txt") +
                           " --days 1 --load-state " + temp_path("no.bcss"));
  EXPECT_EQ(r.exit_code, 3) << r.output;
  EXPECT_NE(r.output.find("[io]"), std::string::npos) << r.output;
}

TEST_F(CliSavestate, BadMagicExits4) {
  const std::string bad = temp_path("cli_bad_magic.bcss");
  spit(bad, std::vector<char>(64, 'x'));
  const CliRun r = run_cli("run " + scenario("scenario1.txt") +
                           " --days 1 --load-state " + bad);
  std::remove(bad.c_str());
  EXPECT_EQ(r.exit_code, 4) << r.output;
  EXPECT_NE(r.output.find("[bad_magic]"), std::string::npos) << r.output;
}

TEST_F(CliSavestate, BadVersionExits5) {
  std::vector<char> bytes = slurp(*path_);
  ASSERT_GT(bytes.size(), 12u);
  bytes[8] = static_cast<char>(bytes[8] ^ 0x7f);
  const std::string bad = temp_path("cli_bad_version.bcss");
  spit(bad, bytes);
  const CliRun r = run_cli("run " + scenario("scenario1.txt") +
                           " --days 1 --load-state " + bad);
  std::remove(bad.c_str());
  EXPECT_EQ(r.exit_code, 5) << r.output;
  EXPECT_NE(r.output.find("[bad_version]"), std::string::npos) << r.output;
}

TEST_F(CliSavestate, TruncatedExits6) {
  std::vector<char> bytes = slurp(*path_);
  bytes.resize(bytes.size() / 2);
  const std::string bad = temp_path("cli_truncated.bcss");
  spit(bad, bytes);
  const CliRun r = run_cli("run " + scenario("scenario1.txt") +
                           " --days 1 --load-state " + bad);
  std::remove(bad.c_str());
  EXPECT_EQ(r.exit_code, 6) << r.output;
  EXPECT_NE(r.output.find("[truncated]"), std::string::npos) << r.output;
}

TEST_F(CliSavestate, CorruptExits7) {
  std::vector<char> bytes = slurp(*path_);
  ASSERT_GT(bytes.size(), 100u);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 1);
  const std::string bad = temp_path("cli_corrupt.bcss");
  spit(bad, bytes);
  const CliRun r = run_cli("run " + scenario("scenario1.txt") +
                           " --days 1 --load-state " + bad);
  std::remove(bad.c_str());
  EXPECT_EQ(r.exit_code, 7) << r.output;
  EXPECT_NE(r.output.find("[corrupt]"), std::string::npos) << r.output;
}

TEST_F(CliSavestate, ScenarioMismatchExits9) {
  // Same file, different seed: the fingerprint must reject the load.
  const CliRun r = run_cli("run " + scenario("scenario1.txt") +
                           " --days 1 --seed 99 --load-state " + *path_);
  EXPECT_EQ(r.exit_code, 9) << r.output;
  EXPECT_NE(r.output.find("[scenario_mismatch]"), std::string::npos)
      << r.output;
}

TEST_F(CliSavestate, PolicyMismatchExits9) {
  const CliRun r =
      run_cli("run " + scenario("scenario1.txt") +
              " --days 1 --policy wrr --load-state " + *path_);
  EXPECT_EQ(r.exit_code, 9) << r.output;
}

TEST(CliDeterminism, IdenticalRunsExit0) {
  const CliRun r =
      run_cli("determinism " + scenario("scenario1.txt") + " --days 0.5");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("determinism OK"), std::string::npos) << r.output;
}

TEST(CliDeterminism, SeededDivergenceExits3) {
  const CliRun r = run_cli("determinism " + scenario("scenario1.txt") +
                           " --days 0.5 --seed2 7");
  EXPECT_EQ(r.exit_code, 3) << r.output;
  EXPECT_NE(r.output.find("reports diverge"), std::string::npos) << r.output;
}

TEST(CliDeterminism, BisectDumpsDivergentStates) {
  // The divergence dumps land in the test's working directory.
  const CliRun r = run_cli("determinism " + scenario("scenario1.txt") +
                           " --days 0.5 --seed2 7 --bisect");
  EXPECT_EQ(r.exit_code, 3) << r.output;
  EXPECT_NE(r.output.find("first divergent checkpoint"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("bce_divergence_a.jsonl"), std::string::npos)
      << r.output;
  // The dumps are JSONL with one field object per line, led by the clock.
  const std::vector<char> a = slurp("bce_divergence_a.jsonl");
  const std::string head(a.begin(),
                         a.begin() + std::min<std::size_t>(a.size(), 20));
  EXPECT_EQ(head.rfind("{\"name\":\"emu.now\"", 0), 0u) << head;
  std::remove("bce_divergence_a.jsonl");
  std::remove("bce_divergence_b.jsonl");
}

}  // namespace
