// Unit tests for the scenario text format (core/scenario_io): parsing,
// serialization round-trips, and error reporting with line numbers.

#include <gtest/gtest.h>

#include <cmath>

#include "core/paper_scenarios.hpp"
#include "core/scenario_io.hpp"

namespace bce {
namespace {

const char* kBasic = R"(
# a comment
name: testbox
duration_days: 2
seed: 7
cpus: 4 @ 1e9
gpu: nvidia 1 @ 1e10
ram: 8e9
min_queue: 3600
max_queue: 7200
avail_host: markov 36000 3600
avail_gpu: window 0 43200
avail_net: always

project: einstein
share: 200
job: cpu flops=2e12 latency=86400 ncpus=1 checkpoint=300

project: gpugrid
share: 100
up: markov 800000 4000
job: gpu=nvidia:1.0 flops=2e13 latency=43200 cpu_frac=0.05 cv=0.1
)";

TEST(ScenarioIo, ParsesBasicScenario) {
  const Scenario sc = parse_scenario(kBasic);
  EXPECT_EQ(sc.name, "testbox");
  EXPECT_DOUBLE_EQ(sc.duration, 2.0 * kSecondsPerDay);
  EXPECT_EQ(sc.seed, 7u);
  EXPECT_EQ(sc.host.count[ProcType::kCpu], 4);
  EXPECT_DOUBLE_EQ(sc.host.flops_per_instance[ProcType::kNvidia], 1e10);
  EXPECT_DOUBLE_EQ(sc.prefs.min_queue, 3600.0);
  EXPECT_EQ(sc.availability.host_on.kind, OnOffSpec::Kind::kMarkov);
  EXPECT_DOUBLE_EQ(sc.availability.host_on.mean_off, 3600.0);
  EXPECT_EQ(sc.availability.gpu_allowed.kind, OnOffSpec::Kind::kDailyWindow);

  ASSERT_EQ(sc.projects.size(), 2u);
  EXPECT_EQ(sc.projects[0].name, "einstein");
  EXPECT_DOUBLE_EQ(sc.projects[0].resource_share, 200.0);
  ASSERT_EQ(sc.projects[0].job_classes.size(), 1u);
  EXPECT_DOUBLE_EQ(sc.projects[0].job_classes[0].flops_est, 2e12);
  EXPECT_FALSE(sc.projects[0].job_classes[0].usage.uses_gpu());

  EXPECT_EQ(sc.projects[1].up.kind, OnOffSpec::Kind::kMarkov);
  const JobClass& g = sc.projects[1].job_classes[0];
  EXPECT_TRUE(g.usage.uses_gpu());
  EXPECT_EQ(g.usage.coproc, ProcType::kNvidia);
  EXPECT_DOUBLE_EQ(g.usage.avg_ncpus, 0.05);
  EXPECT_DOUBLE_EQ(g.flops_cv, 0.1);
}

TEST(ScenarioIo, CheckpointNever) {
  const Scenario sc = parse_scenario(
      "cpus: 1 @ 1e9\nproject: p\njob: cpu flops=1e12 latency=1e5 "
      "checkpoint=never\n");
  EXPECT_TRUE(std::isinf(sc.projects[0].job_classes[0].checkpoint_period));
}

TEST(ScenarioIo, RoundTripBasic) {
  const Scenario a = parse_scenario(kBasic);
  const Scenario b = parse_scenario(serialize_scenario(a));
  EXPECT_EQ(b.name, a.name);
  EXPECT_DOUBLE_EQ(b.duration, a.duration);
  EXPECT_EQ(b.seed, a.seed);
  EXPECT_EQ(b.projects.size(), a.projects.size());
  for (std::size_t p = 0; p < a.projects.size(); ++p) {
    EXPECT_EQ(b.projects[p].name, a.projects[p].name);
    EXPECT_DOUBLE_EQ(b.projects[p].resource_share,
                     a.projects[p].resource_share);
    ASSERT_EQ(b.projects[p].job_classes.size(),
              a.projects[p].job_classes.size());
    for (std::size_t j = 0; j < a.projects[p].job_classes.size(); ++j) {
      const auto& ja = a.projects[p].job_classes[j];
      const auto& jb = b.projects[p].job_classes[j];
      EXPECT_DOUBLE_EQ(jb.flops_est, ja.flops_est);
      EXPECT_DOUBLE_EQ(jb.latency_bound, ja.latency_bound);
      EXPECT_DOUBLE_EQ(jb.flops_cv, ja.flops_cv);
      EXPECT_DOUBLE_EQ(jb.usage.avg_ncpus, ja.usage.avg_ncpus);
      EXPECT_EQ(jb.usage.coproc, ja.usage.coproc);
    }
  }
}

class PaperScenarioRoundTrip
    : public ::testing::TestWithParam<Scenario (*)()> {};

TEST_P(PaperScenarioRoundTrip, SurvivesSerializeParse) {
  const Scenario a = GetParam()();
  const Scenario b = parse_scenario(serialize_scenario(a));
  EXPECT_EQ(b.name, a.name);
  EXPECT_DOUBLE_EQ(b.duration, a.duration);
  ASSERT_EQ(b.projects.size(), a.projects.size());
  for (std::size_t p = 0; p < a.projects.size(); ++p) {
    ASSERT_EQ(b.projects[p].job_classes.size(),
              a.projects[p].job_classes.size());
    for (std::size_t j = 0; j < a.projects[p].job_classes.size(); ++j) {
      EXPECT_DOUBLE_EQ(b.projects[p].job_classes[j].flops_est,
                       a.projects[p].job_classes[j].flops_est);
      EXPECT_DOUBLE_EQ(b.projects[p].job_classes[j].latency_bound,
                       a.projects[p].job_classes[j].latency_bound);
    }
  }
}

namespace {
Scenario scenario2_wrapper() { return paper_scenario2(); }
Scenario scenario3_wrapper() { return paper_scenario3(); }
Scenario scenario4_wrapper() { return paper_scenario4(); }
Scenario scenario1_wrapper() { return paper_scenario1(1500.0); }
}  // namespace

INSTANTIATE_TEST_SUITE_P(PaperScenarios, PaperScenarioRoundTrip,
                         ::testing::Values(&scenario1_wrapper,
                                           &scenario2_wrapper,
                                           &scenario3_wrapper,
                                           &scenario4_wrapper));

struct BadInput {
  const char* name;
  const char* text;
  int line;
};

class ScenarioIoErrors : public ::testing::TestWithParam<BadInput> {};

TEST_P(ScenarioIoErrors, ReportsLineNumber) {
  try {
    parse_scenario(GetParam().text);
    FAIL() << "expected ScenarioParseError";
  } catch (const ScenarioParseError& e) {
    EXPECT_EQ(e.line(), GetParam().line) << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    BadInputs, ScenarioIoErrors,
    ::testing::Values(
        BadInput{"missing_colon", "cpus 4\n", 1},
        BadInput{"unknown_key", "cpus: 1 @ 1e9\nfrobnicate: 3\n", 2},
        BadInput{"bad_number", "cpus: x @ 1e9\n", 1},
        BadInput{"bad_cpus_shape", "cpus: 4 1e9\n", 1},
        BadInput{"bad_gpu_type", "cpus: 1 @ 1e9\ngpu: amd 1 @ 1e10\n", 2},
        BadInput{"share_outside_project", "cpus: 1 @ 1e9\nshare: 5\n", 2},
        BadInput{"job_outside_project",
                 "cpus: 1 @ 1e9\njob: cpu flops=1 latency=1\n", 2},
        BadInput{"job_missing_flops",
                 "cpus: 1 @ 1e9\nproject: p\njob: cpu latency=10\n", 3},
        BadInput{"job_missing_latency",
                 "cpus: 1 @ 1e9\nproject: p\njob: cpu flops=1e12\n", 3},
        BadInput{"job_bad_attr",
                 "cpus: 1 @ 1e9\nproject: p\njob: cpu flops=1e12 latency=10 "
                 "zork=1\n",
                 3},
        BadInput{"bad_avail_kind", "avail_host: sometimes\n", 1},
        BadInput{"markov_missing_args", "avail_host: markov 100\n", 1}),
    [](const ::testing::TestParamInfo<BadInput>& info) {
      return info.param.name;
    });

TEST(ScenarioIo, ParsesExtensionFields) {
  const Scenario sc = parse_scenario(
      "cpus: 2 @ 1e9\n"
      "bandwidth: 1e6\n"
      "avail_host: markov 10000 2000 weibull 1.5\n"
      "avail_net: trace 3600:on 600:off\n"
      "project: p\n"
      "max_in_progress: 3\n"
      "job: cpu flops=1e12 latency=1e5 input_bytes=5e7\n");
  EXPECT_DOUBLE_EQ(sc.host.download_bandwidth_bps, 1e6);
  EXPECT_EQ(sc.availability.host_on.dist, PeriodDist::kWeibull);
  EXPECT_DOUBLE_EQ(sc.availability.host_on.shape, 1.5);
  EXPECT_EQ(sc.availability.network.kind, OnOffSpec::Kind::kTrace);
  ASSERT_EQ(sc.availability.network.trace.size(), 2u);
  EXPECT_DOUBLE_EQ(sc.availability.network.trace[1].duration, 600.0);
  EXPECT_FALSE(sc.availability.network.trace[1].on);
  EXPECT_EQ(sc.projects[0].max_jobs_in_progress, 3);
  EXPECT_DOUBLE_EQ(sc.projects[0].job_classes[0].input_bytes, 5e7);
}

TEST(ScenarioIo, WeeklyAvailabilityRoundTrip) {
  const Scenario a = parse_scenario(
      "cpus: 1 @ 1e9\n"
      "avail_host: weekly 32400 61200 1111100\n"
      "project: p\n"
      "job: cpu flops=1e12 latency=1e5\n");
  EXPECT_EQ(a.availability.host_on.kind, OnOffSpec::Kind::kWeekly);
  EXPECT_DOUBLE_EQ(a.availability.host_on.window_start, 32400.0);
  EXPECT_TRUE(a.availability.host_on.active_days[0]);
  EXPECT_FALSE(a.availability.host_on.active_days[5]);
  const Scenario b = parse_scenario(serialize_scenario(a));
  EXPECT_EQ(b.availability.host_on.kind, OnOffSpec::Kind::kWeekly);
  EXPECT_EQ(b.availability.host_on.active_days, a.availability.host_on.active_days);
}

TEST(ScenarioIo, WeeklyBadDayFlagsRejected) {
  EXPECT_THROW(parse_scenario("avail_host: weekly 0 100 11111\n"),
               ScenarioParseError);
  EXPECT_THROW(parse_scenario("avail_host: weekly 0 100 11111x1\n"),
               ScenarioParseError);
}

TEST(ScenarioIo, ExtensionFieldsRoundTrip) {
  Scenario a = parse_scenario(
      "cpus: 2 @ 1e9\n"
      "bandwidth: 2e6\n"
      "avail_host: markov 10000 2000 lognormal 0.7\n"
      "avail_gpu: trace 100:on 50:off 30:on\n"
      "project: p\n"
      "max_in_progress: 5\n"
      "job: cpu flops=1e12 latency=1e5 input_bytes=1e8 transfer=60\n");
  const Scenario b = parse_scenario(serialize_scenario(a));
  EXPECT_DOUBLE_EQ(b.host.download_bandwidth_bps, 2e6);
  EXPECT_EQ(b.availability.host_on.dist, PeriodDist::kLognormal);
  EXPECT_DOUBLE_EQ(b.availability.host_on.shape, 0.7);
  ASSERT_EQ(b.availability.gpu_allowed.trace.size(), 3u);
  EXPECT_EQ(b.projects[0].max_jobs_in_progress, 5);
  EXPECT_DOUBLE_EQ(b.projects[0].job_classes[0].input_bytes, 1e8);
  EXPECT_DOUBLE_EQ(b.projects[0].job_classes[0].transfer_delay, 60.0);
}

TEST(ScenarioIo, ParsesDeviceAndReplicationFields) {
  const Scenario sc = parse_scenario(
      "cpus: 2 @ 1e9\n"
      "device_ac: markov 21600 7200\n"
      "device_wifi: window 0 43200\n"
      "battery_charge: 0.8\n"
      "battery_discharge: 0.3\n"
      "battery_recharge: 0.6\n"
      "project: p\n"
      "replicas: 3\n"
      "quorum: 2\n"
      "job: cpu flops=1e12 latency=1e5\n");
  EXPECT_EQ(sc.host.device.on_ac.kind, OnOffSpec::Kind::kMarkov);
  EXPECT_DOUBLE_EQ(sc.host.device.on_ac.mean_on, 21600.0);
  EXPECT_EQ(sc.host.device.on_wifi.kind, OnOffSpec::Kind::kDailyWindow);
  EXPECT_DOUBLE_EQ(sc.host.device.battery_charge, 0.8);
  EXPECT_DOUBLE_EQ(sc.host.device.battery_discharge, 0.3);
  EXPECT_DOUBLE_EQ(sc.host.device.battery_recharge, 0.6);
  EXPECT_EQ(sc.projects[0].target_replicas, 3);
  EXPECT_EQ(sc.projects[0].quorum, 2);
}

TEST(ScenarioIo, DeviceAndReplicationDefaultsWhenOmitted) {
  const Scenario sc = parse_scenario(
      "cpus: 1 @ 1e9\nproject: p\njob: cpu flops=1e12 latency=1e5\n");
  EXPECT_TRUE(sc.host.device.is_default());
  EXPECT_EQ(sc.projects[0].target_replicas, 1);
  EXPECT_EQ(sc.projects[0].quorum, 1);
  // Defaults stay unserialized, keeping pre-device scenario texts (and
  // their savestate fingerprints) byte-identical.
  const std::string text = serialize_scenario(sc);
  EXPECT_EQ(text.find("device_"), std::string::npos);
  EXPECT_EQ(text.find("battery_"), std::string::npos);
  EXPECT_EQ(text.find("replicas:"), std::string::npos);
  EXPECT_EQ(text.find("quorum:"), std::string::npos);
}

TEST(ScenarioIo, DeviceAndReplicationFieldsRoundTrip) {
  const Scenario a = parse_scenario(
      "cpus: 2 @ 1e9\n"
      "device_ac: markov 21600 7200\n"
      "device_wifi: window 3600 43200\n"
      "battery_charge: 0.75\n"
      "battery_discharge: 0.25\n"
      "battery_recharge: 0.5\n"
      "project: p\n"
      "replicas: 3\n"
      "quorum: 2\n"
      "job: cpu flops=1e12 latency=1e5\n");
  const Scenario b = parse_scenario(serialize_scenario(a));
  EXPECT_EQ(b.host.device.on_ac.kind, a.host.device.on_ac.kind);
  EXPECT_DOUBLE_EQ(b.host.device.on_ac.mean_off, a.host.device.on_ac.mean_off);
  EXPECT_EQ(b.host.device.on_wifi.kind, a.host.device.on_wifi.kind);
  EXPECT_DOUBLE_EQ(b.host.device.on_wifi.window_end,
                   a.host.device.on_wifi.window_end);
  EXPECT_DOUBLE_EQ(b.host.device.battery_charge, a.host.device.battery_charge);
  EXPECT_DOUBLE_EQ(b.host.device.battery_discharge,
                   a.host.device.battery_discharge);
  EXPECT_DOUBLE_EQ(b.host.device.battery_recharge,
                   a.host.device.battery_recharge);
  EXPECT_EQ(b.projects[0].target_replicas, a.projects[0].target_replicas);
  EXPECT_EQ(b.projects[0].quorum, a.projects[0].quorum);
}

TEST(ScenarioIo, RejectsInvalidDeviceAndReplicationValues) {
  const char* header = "cpus: 1 @ 1e9\n";
  const char* footer = "project: p\njob: cpu flops=1e12 latency=1e5\n";
  for (const char* bad :
       {"battery_charge: 1.5\n", "battery_charge: -0.1\n",
        "battery_charge: nan\n", "battery_discharge: -1\n",
        "battery_discharge: inf\n", "battery_recharge: -0.5\n"}) {
    EXPECT_THROW(parse_scenario(std::string(header) + bad + footer),
                 std::invalid_argument)
        << bad;
  }
  // replicas/quorum are per-project keys...
  for (const char* bad : {"replicas: 0\n", "quorum: 0\n",
                          "replicas: 2\nquorum: 3\n"}) {
    EXPECT_THROW(
        parse_scenario(std::string(header) + "project: p\n" + bad +
                       "job: cpu flops=1e12 latency=1e5\n"),
        std::invalid_argument)
        << bad;
  }
  // ...and are rejected with a line number outside a project block.
  try {
    parse_scenario("cpus: 1 @ 1e9\nreplicas: 2\n");
    FAIL() << "expected ScenarioParseError";
  } catch (const ScenarioParseError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

TEST(ScenarioIo, InvalidButWellFormedFailsValidation) {
  // Well-formed text describing an invalid scenario (no projects).
  EXPECT_THROW(parse_scenario("cpus: 1 @ 1e9\n"), std::invalid_argument);
}

TEST(ScenarioIo, RejectsNonFiniteNumbers) {
  // std::stod parses "nan" and "inf"; validation must catch them.
  EXPECT_THROW(parse_scenario("cpus: 1 @ 1e9\nduration: nan\nproject: p\n"
                              "job: cpu flops=1e12 latency=1e5\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario("cpus: 1 @ 1e9\nproject: p\n"
                              "job: cpu flops=inf latency=1e5\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario("cpus: 1 @ 1e9\nfault_rpc_loss: nan\n"
                              "project: p\n"
                              "job: cpu flops=1e12 latency=1e5\n"),
               std::invalid_argument);
}

TEST(ScenarioIo, MissingFileThrows) {
  EXPECT_THROW(load_scenario_file("/nonexistent/path.txt"),
               std::runtime_error);
}

#ifdef BCE_SOURCE_DIR
TEST(ScenarioIo, ShippedScenarioFilesLoadAndValidate) {
  for (const char* name :
       {"scenario1.txt", "scenario2.txt", "scenario3.txt", "scenario4.txt",
        "sampled_host.txt", "faulty.txt"}) {
    const std::string path =
        std::string(BCE_SOURCE_DIR) + "/scenarios/" + name;
    Scenario sc;
    ASSERT_NO_THROW(sc = load_scenario_file(path)) << path;
    std::string err;
    EXPECT_TRUE(sc.validate(&err)) << path << ": " << err;
    EXPECT_FALSE(sc.projects.empty()) << path;
  }
}
#endif

}  // namespace
}  // namespace bce
