// Unit tests for the host/model layer: HostInfo, Preferences,
// ResourceUsage, JobClass, Result, and scenario validation.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "host/host_info.hpp"
#include "host/preferences.hpp"
#include "model/job.hpp"
#include "model/project.hpp"
#include "model/scenario.hpp"

namespace bce {
namespace {

TEST(HostInfo, PeakFlops) {
  const HostInfo h = HostInfo::cpu_gpu(4, 1e9, 2, 10e9);
  EXPECT_DOUBLE_EQ(h.peak_flops(ProcType::kCpu), 4e9);
  EXPECT_DOUBLE_EQ(h.peak_flops(ProcType::kNvidia), 20e9);
  EXPECT_DOUBLE_EQ(h.peak_flops(ProcType::kAti), 0.0);
  EXPECT_DOUBLE_EQ(h.total_peak_flops(), 24e9);
  EXPECT_TRUE(h.has_gpu());
  EXPECT_FALSE(HostInfo::cpu_only(1, 1e9).has_gpu());
}

TEST(Preferences, DefaultIsValid) {
  EXPECT_TRUE(Preferences{}.valid());
}

TEST(Preferences, MaxBelowMinInvalid) {
  Preferences p;
  p.min_queue = 1000.0;
  p.max_queue = 500.0;
  EXPECT_FALSE(p.valid());
}

TEST(Preferences, BadRamFractionInvalid) {
  Preferences p;
  p.ram_limit_fraction = 0.0;
  EXPECT_FALSE(p.valid());
  p.ram_limit_fraction = 1.5;
  EXPECT_FALSE(p.valid());
}

TEST(ResourceUsage, CpuJob) {
  const ResourceUsage u = ResourceUsage::cpu(2.0);
  EXPECT_FALSE(u.uses_gpu());
  EXPECT_EQ(u.primary_type(), ProcType::kCpu);
  EXPECT_DOUBLE_EQ(u.usage_of(ProcType::kCpu), 2.0);
  EXPECT_DOUBLE_EQ(u.usage_of(ProcType::kNvidia), 0.0);
}

TEST(ResourceUsage, GpuJob) {
  const ResourceUsage u = ResourceUsage::gpu(ProcType::kAti, 0.5, 0.1);
  EXPECT_TRUE(u.uses_gpu());
  EXPECT_EQ(u.primary_type(), ProcType::kAti);
  EXPECT_DOUBLE_EQ(u.usage_of(ProcType::kAti), 0.5);
  EXPECT_DOUBLE_EQ(u.usage_of(ProcType::kCpu), 0.1);
  EXPECT_DOUBLE_EQ(u.usage_of(ProcType::kNvidia), 0.0);
}

TEST(ResourceUsage, FlopsRateCombinesCpuAndGpu) {
  const HostInfo h = HostInfo::cpu_gpu(4, 1e9, 1, 10e9);
  EXPECT_DOUBLE_EQ(ResourceUsage::cpu(1.0).flops_rate(h), 1e9);
  EXPECT_DOUBLE_EQ(ResourceUsage::gpu(ProcType::kNvidia, 1.0, 0.1).flops_rate(h),
                   10e9 + 0.1e9);
}

TEST(JobClass, EstRuntimeAndSlack) {
  const HostInfo h = HostInfo::cpu_only(1, 1e9);
  JobClass jc;
  jc.flops_est = 2000e9;
  jc.latency_bound = 3000.0;
  jc.usage = ResourceUsage::cpu(1.0);
  EXPECT_DOUBLE_EQ(jc.est_runtime(h), 2000.0);
  EXPECT_DOUBLE_EQ(jc.slack(h), 1000.0);
}

TEST(Result, CompletionAndDeadline) {
  Result r;
  r.flops_total = 100.0;
  r.deadline = 50.0;
  EXPECT_FALSE(r.is_complete());
  r.flops_done = 100.0;
  EXPECT_TRUE(r.is_complete());
  r.completed_at = 49.0;
  EXPECT_FALSE(r.missed_deadline());
  r.completed_at = 51.0;
  EXPECT_TRUE(r.missed_deadline());
}

TEST(Result, EstRemainingUsesEstimateUntilStarted) {
  Result r;
  r.flops_est = 500.0;   // server underestimate
  r.flops_total = 1000.0;
  EXPECT_DOUBLE_EQ(r.est_flops_remaining(), 500.0);
  r.flops_done = 100.0;  // once running, fraction-done corrects the estimate
  EXPECT_DOUBLE_EQ(r.est_flops_remaining(), 900.0);
}

TEST(Result, RunnableRespectsTransferDelay) {
  Result r;
  r.flops_total = 100.0;
  r.runnable_at = 50.0;
  EXPECT_FALSE(r.runnable(49.0));
  EXPECT_TRUE(r.runnable(50.0));
}

TEST(ProjectConfig, HasJobsFor) {
  ProjectConfig p;
  JobClass c;
  c.usage = ResourceUsage::cpu(1.0);
  p.job_classes.push_back(c);
  JobClass g;
  g.usage = ResourceUsage::gpu(ProcType::kNvidia, 1.0);
  p.job_classes.push_back(g);
  EXPECT_TRUE(p.has_jobs_for(ProcType::kCpu));
  EXPECT_TRUE(p.has_jobs_for(ProcType::kNvidia));
  EXPECT_FALSE(p.has_jobs_for(ProcType::kAti));
}

// ---------------------------------------------------------------------
// Scenario validation: one minimal valid scenario, then a parameterized
// sweep over single-field corruptions, each of which must be rejected.
// ---------------------------------------------------------------------

Scenario minimal_scenario() {
  Scenario sc;
  sc.host = HostInfo::cpu_only(2, 1e9);
  ProjectConfig p;
  p.name = "p";
  JobClass jc;
  jc.flops_est = 1e12;
  jc.latency_bound = 86400.0;
  jc.usage = ResourceUsage::cpu(1.0);
  p.job_classes.push_back(jc);
  sc.projects.push_back(p);
  return sc;
}

TEST(ScenarioValidate, MinimalIsValid) {
  std::string err;
  EXPECT_TRUE(minimal_scenario().validate(&err)) << err;
}

using Corruption = void (*)(Scenario&);

struct NamedCorruption {
  const char* name;
  Corruption fn;
};

class ScenarioCorruption : public ::testing::TestWithParam<NamedCorruption> {};

TEST_P(ScenarioCorruption, IsRejectedWithMessage) {
  Scenario sc = minimal_scenario();
  GetParam().fn(sc);
  std::string err;
  EXPECT_FALSE(sc.validate(&err));
  EXPECT_FALSE(err.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Corruptions, ScenarioCorruption,
    ::testing::Values(
        NamedCorruption{"no_cpus",
                        [](Scenario& s) { s.host.count[ProcType::kCpu] = 0; }},
        NamedCorruption{"zero_cpu_flops",
                        [](Scenario& s) {
                          s.host.flops_per_instance[ProcType::kCpu] = 0.0;
                        }},
        NamedCorruption{"negative_ram",
                        [](Scenario& s) { s.host.ram_bytes = -1.0; }},
        NamedCorruption{"bad_prefs",
                        [](Scenario& s) { s.prefs.max_queue = -1.0; }},
        NamedCorruption{"zero_duration",
                        [](Scenario& s) { s.duration = 0.0; }},
        NamedCorruption{"no_projects",
                        [](Scenario& s) { s.projects.clear(); }},
        NamedCorruption{"zero_share",
                        [](Scenario& s) {
                          s.projects[0].resource_share = 0.0;
                        }},
        NamedCorruption{"no_job_classes",
                        [](Scenario& s) { s.projects[0].job_classes.clear(); }},
        NamedCorruption{"zero_flops",
                        [](Scenario& s) {
                          s.projects[0].job_classes[0].flops_est = 0.0;
                        }},
        NamedCorruption{"zero_latency",
                        [](Scenario& s) {
                          s.projects[0].job_classes[0].latency_bound = 0.0;
                        }},
        NamedCorruption{"zero_est_error",
                        [](Scenario& s) {
                          s.projects[0].job_classes[0].est_error = 0.0;
                        }},
        NamedCorruption{"negative_cv",
                        [](Scenario& s) {
                          s.projects[0].job_classes[0].flops_cv = -0.1;
                        }},
        NamedCorruption{"gpu_job_without_gpu",
                        [](Scenario& s) {
                          s.projects[0].job_classes[0].usage =
                              ResourceUsage::gpu(ProcType::kNvidia, 1.0);
                        }},
        NamedCorruption{"too_many_cpus_needed",
                        [](Scenario& s) {
                          s.projects[0].job_classes[0].usage =
                              ResourceUsage::cpu(64.0);
                        }},
        NamedCorruption{"no_processors_used",
                        [](Scenario& s) {
                          s.projects[0].job_classes[0].usage =
                              ResourceUsage::cpu(0.0);
                        }},
        NamedCorruption{"ram_exceeds_host",
                        [](Scenario& s) {
                          s.projects[0].job_classes[0].ram_bytes = 1e18;
                        }},
        NamedCorruption{"zero_checkpoint",
                        [](Scenario& s) {
                          s.projects[0].job_classes[0].checkpoint_period = 0.0;
                        }},
        NamedCorruption{"negative_transfer",
                        [](Scenario& s) {
                          s.projects[0].job_classes[0].transfer_delay = -5.0;
                        }},
        // NaN/Inf regression sweep: every numeric field must reject
        // non-finite values instead of silently poisoning the emulation
        // (std::stod happily parses "nan" and "inf").
        NamedCorruption{"nan_duration",
                        [](Scenario& s) { s.duration = std::nan(""); }},
        NamedCorruption{"inf_duration",
                        [](Scenario& s) {
                          s.duration = std::numeric_limits<double>::infinity();
                        }},
        NamedCorruption{"nan_cpu_flops",
                        [](Scenario& s) {
                          s.host.flops_per_instance[ProcType::kCpu] =
                              std::nan("");
                        }},
        NamedCorruption{"inf_ram",
                        [](Scenario& s) {
                          s.host.ram_bytes =
                              std::numeric_limits<double>::infinity();
                        }},
        NamedCorruption{"nan_bandwidth",
                        [](Scenario& s) {
                          s.host.download_bandwidth_bps = std::nan("");
                        }},
        NamedCorruption{"nan_min_queue",
                        [](Scenario& s) { s.prefs.min_queue = std::nan(""); }},
        NamedCorruption{"inf_poll_period",
                        [](Scenario& s) {
                          s.prefs.poll_period =
                              std::numeric_limits<double>::infinity();
                        }},
        NamedCorruption{"negative_report_delay",
                        [](Scenario& s) {
                          s.prefs.max_report_delay = -1.0;
                        }},
        NamedCorruption{"nan_share",
                        [](Scenario& s) {
                          s.projects[0].resource_share = std::nan("");
                        }},
        NamedCorruption{"inf_share",
                        [](Scenario& s) {
                          s.projects[0].resource_share =
                              std::numeric_limits<double>::infinity();
                        }},
        NamedCorruption{"nan_avail_mean",
                        [](Scenario& s) {
                          s.availability.host_on =
                              OnOffSpec::markov(std::nan(""), 600.0);
                        }},
        NamedCorruption{"inf_flops_est",
                        [](Scenario& s) {
                          s.projects[0].job_classes[0].flops_est =
                              std::numeric_limits<double>::infinity();
                        }},
        NamedCorruption{"nan_latency",
                        [](Scenario& s) {
                          s.projects[0].job_classes[0].latency_bound =
                              std::nan("");
                        }},
        NamedCorruption{"nan_checkpoint",
                        [](Scenario& s) {
                          s.projects[0].job_classes[0].checkpoint_period =
                              std::nan("");
                        }},
        NamedCorruption{"nan_cv",
                        [](Scenario& s) {
                          s.projects[0].job_classes[0].flops_cv = std::nan("");
                        }},
        NamedCorruption{"nan_input_bytes",
                        [](Scenario& s) {
                          s.projects[0].job_classes[0].input_bytes =
                              std::nan("");
                        }},
        NamedCorruption{"job_error_rate_above_one",
                        [](Scenario& s) {
                          s.projects[0].job_classes[0].error_rate = 1.5;
                        }},
        NamedCorruption{"nan_job_abort_rate",
                        [](Scenario& s) {
                          s.projects[0].job_classes[0].abort_rate =
                              std::nan("");
                        }},
        NamedCorruption{"nan_fault_rate",
                        [](Scenario& s) {
                          s.faults.job_error_rate = std::nan("");
                        }},
        NamedCorruption{"inf_crash_mtbf",
                        [](Scenario& s) {
                          s.faults.crash_mtbf =
                              std::numeric_limits<double>::infinity();
                        }}),
    [](const ::testing::TestParamInfo<NamedCorruption>& info) {
      return info.param.name;
    });

TEST(Scenario, ShareFractions) {
  Scenario sc = minimal_scenario();
  sc.projects.push_back(sc.projects[0]);
  sc.projects[0].resource_share = 300.0;
  sc.projects[1].resource_share = 100.0;
  EXPECT_DOUBLE_EQ(sc.total_share(), 400.0);
  EXPECT_DOUBLE_EQ(sc.share_fraction(0), 0.75);
  EXPECT_DOUBLE_EQ(sc.share_fraction(1), 0.25);
}

}  // namespace
}  // namespace bce
