// Unit tests for sim/distribution: correctness of moments, support bounds,
// and determinism of every sampler.

#include <gtest/gtest.h>

#include <cmath>

#include "sim/distribution.hpp"

namespace bce {
namespace {

constexpr int kN = 50000;

TEST(Exponential, MeanMatches) {
  Xoshiro256 rng(1);
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += sample_exponential(rng, 100.0);
  EXPECT_NEAR(sum / kN, 100.0, 2.0);
}

TEST(Exponential, AlwaysPositive) {
  Xoshiro256 rng(2);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(sample_exponential(rng, 5.0), 0.0);
  }
}

TEST(Exponential, VarianceMatchesMeanSquared) {
  Xoshiro256 rng(3);
  double sum = 0.0;
  double sum2 = 0.0;
  const double mean = 42.0;
  for (int i = 0; i < kN; ++i) {
    const double x = sample_exponential(rng, mean);
    sum += x;
    sum2 += x * x;
  }
  const double m = sum / kN;
  const double var = sum2 / kN - m * m;
  EXPECT_NEAR(var, mean * mean, 0.1 * mean * mean);
}

TEST(StandardNormal, MomentsMatch) {
  Xoshiro256 rng(4);
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = sample_standard_normal(rng);
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum2 / kN, 1.0, 0.03);
}

TEST(Normal, ShiftAndScale) {
  Xoshiro256 rng(5);
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += sample_normal(rng, 10.0, 3.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.1);
}

TEST(TruncatedNormal, RespectsFloor) {
  Xoshiro256 rng(6);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(sample_truncated_normal(rng, 10.0, 1.0, 0.5), 0.5);
  }
}

TEST(TruncatedNormal, ZeroCvReturnsMean) {
  Xoshiro256 rng(7);
  EXPECT_DOUBLE_EQ(sample_truncated_normal(rng, 10.0, 0.0, 1.0), 10.0);
}

TEST(TruncatedNormal, ZeroCvBelowFloorClamps) {
  Xoshiro256 rng(8);
  EXPECT_DOUBLE_EQ(sample_truncated_normal(rng, 1.0, 0.0, 5.0), 5.0);
}

TEST(TruncatedNormal, SmallCvMeanUnbiased) {
  Xoshiro256 rng(9);
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) {
    sum += sample_truncated_normal(rng, 1000.0, 0.1, 1.0);
  }
  EXPECT_NEAR(sum / kN, 1000.0, 2.0);
}

TEST(TruncatedNormal, PathologicalParamsTerminate) {
  Xoshiro256 rng(10);
  // Mean far below the floor with tiny sd: rejection can't succeed; the
  // fallback must return the floor rather than spin forever.
  const double x = sample_truncated_normal(rng, 1.0, 1e-6, 100.0);
  EXPECT_DOUBLE_EQ(x, 100.0);
}

TEST(LogUniform, WithinBounds) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double x = sample_log_uniform(rng, 10.0, 1000.0);
    EXPECT_GE(x, 10.0);
    EXPECT_LE(x, 1000.0 * (1 + 1e-12));
  }
}

TEST(LogUniform, MedianIsGeometricMean) {
  Xoshiro256 rng(12);
  int below = 0;
  const double geo = std::sqrt(10.0 * 1000.0);
  for (int i = 0; i < kN; ++i) {
    if (sample_log_uniform(rng, 10.0, 1000.0) < geo) ++below;
  }
  EXPECT_NEAR(static_cast<double>(below) / kN, 0.5, 0.01);
}

TEST(LogUniform, DegenerateRange) {
  Xoshiro256 rng(13);
  EXPECT_DOUBLE_EQ(sample_log_uniform(rng, 7.0, 7.0), 7.0);
}

TEST(Bernoulli, FrequencyMatchesP) {
  Xoshiro256 rng(14);
  int hits = 0;
  for (int i = 0; i < kN; ++i) {
    if (sample_bernoulli(rng, 0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Bernoulli, Extremes) {
  Xoshiro256 rng(15);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(sample_bernoulli(rng, 0.0));
    EXPECT_TRUE(sample_bernoulli(rng, 1.0));
  }
}

TEST(Weibull, MeanMatchesAcrossShapes) {
  for (const double k : {0.5, 1.0, 2.0, 4.0}) {
    Xoshiro256 rng(static_cast<std::uint64_t>(k * 100));
    double sum = 0.0;
    for (int i = 0; i < kN; ++i) sum += sample_weibull(rng, 500.0, k);
    EXPECT_NEAR(sum / kN, 500.0, 25.0) << "shape " << k;
  }
}

TEST(Weibull, ShapeOneIsExponential) {
  // k = 1 Weibull == exponential: compare variances (exp: var = mean^2).
  Xoshiro256 rng(55);
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = sample_weibull(rng, 100.0, 1.0);
    sum += x;
    sum2 += x * x;
  }
  const double m = sum / kN;
  EXPECT_NEAR(sum2 / kN - m * m, 100.0 * 100.0, 1500.0);
}

TEST(Weibull, AlwaysPositive) {
  Xoshiro256 rng(56);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(sample_weibull(rng, 10.0, 0.7), 0.0);
  }
}

TEST(Lognormal, MeanMatches) {
  Xoshiro256 rng(57);
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += sample_lognormal(rng, 200.0, 0.5);
  EXPECT_NEAR(sum / kN, 200.0, 5.0);
}

TEST(Lognormal, ZeroSigmaIsConstant) {
  Xoshiro256 rng(58);
  EXPECT_NEAR(sample_lognormal(rng, 42.0, 0.0), 42.0, 1e-9);
}

TEST(AllSamplers, DeterministicGivenStream) {
  Xoshiro256 a(99);
  Xoshiro256 b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(sample_exponential(a, 10.0), sample_exponential(b, 10.0));
    EXPECT_DOUBLE_EQ(sample_standard_normal(a), sample_standard_normal(b));
    EXPECT_DOUBLE_EQ(sample_log_uniform(a, 1.0, 2.0),
                     sample_log_uniform(b, 1.0, 2.0));
    EXPECT_EQ(sample_bernoulli(a, 0.5), sample_bernoulli(b, 0.5));
  }
}

/// Property sweep: exponential mean correct across scales.
class ExponentialMeanSweep : public ::testing::TestWithParam<double> {};

TEST_P(ExponentialMeanSweep, MeanWithinFivePercent) {
  const double mean = GetParam();
  Xoshiro256 rng(static_cast<std::uint64_t>(mean * 1000));
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += sample_exponential(rng, mean);
  EXPECT_NEAR(sum / kN, mean, 0.05 * mean);
}

INSTANTIATE_TEST_SUITE_P(Scales, ExponentialMeanSweep,
                         ::testing::Values(0.01, 1.0, 3600.0, 86400.0, 1e7));

}  // namespace
}  // namespace bce
