// Tests for the lexical layer of the static-analysis library
// (src/lint/source.{hpp,cpp}): the raw-string-aware stripper — whose
// predecessor silently corrupted its scan state on raw strings — the
// tokenizer's exact positions, and the allow-marker escape hatch.

#include "lint/source.hpp"

#include <gtest/gtest.h>

#include <string>

namespace {

using bce::lint::SourceFile;
using bce::lint::strip_comments;
using bce::lint::strip_noncode;
using bce::lint::Token;

TEST(StripNoncode, BlanksCommentsAndLiterals) {
  const std::string in =
      "int x = 1; // trailing\n"
      "/* block */ int y = 2;\n"
      "const char* s = \"std::vector\"; char c = ':';\n";
  const std::string out = strip_noncode(in);
  EXPECT_EQ(out.find("trailing"), std::string::npos);
  EXPECT_EQ(out.find("block"), std::string::npos);
  EXPECT_EQ(out.find("std::vector"), std::string::npos);
  EXPECT_NE(out.find("int x = 1;"), std::string::npos);
  EXPECT_NE(out.find("int y = 2;"), std::string::npos);
  // Newlines survive so line numbers stay exact.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'),
            std::count(in.begin(), in.end(), '\n'));
}

TEST(StripNoncode, RawStringWithQuoteAndSlashes) {
  // Regression: the old stripper treated the " inside a raw string as the
  // closing quote, flipped back to code state mid-literal, and then saw
  // the // as a comment — corrupting everything after it on the line.
  const std::string in =
      "auto re = R\"(quote \" then // not a comment)\"; std::sort(v);\n"
      "std::vector<int> w;\n";
  const std::string out = strip_noncode(in);
  EXPECT_EQ(out.find("not a comment"), std::string::npos);
  EXPECT_NE(out.find("std::sort"), std::string::npos)
      << "code after the raw string must survive";
  EXPECT_NE(out.find("std::vector"), std::string::npos);
}

TEST(StripNoncode, RawStringWithDelimiter) {
  const std::string in =
      "auto re = R\"xy(inner )\" not the end)xy\"; int z = 3;\n";
  const std::string out = strip_noncode(in);
  EXPECT_EQ(out.find("inner"), std::string::npos);
  EXPECT_EQ(out.find("not the end"), std::string::npos);
  EXPECT_NE(out.find("int z = 3;"), std::string::npos);
}

TEST(StripNoncode, MultilineRawStringKeepsNewlines) {
  const std::string in = "auto s = R\"(line1\nline2\n)\"; int a;\n";
  const std::string out = strip_noncode(in);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
  EXPECT_NE(out.find("int a;"), std::string::npos);
}

TEST(StripNoncode, IdentifierEndingInRIsNotARawString) {
  // FooR"..." lexes as identifier FooR then an ordinary string.
  const std::string in = "auto x = FooR\"(y)\";\nint later = 1;\n";
  const std::string out = strip_noncode(in);
  EXPECT_NE(out.find("FooR"), std::string::npos);
  EXPECT_NE(out.find("int later = 1;"), std::string::npos);
}

TEST(StripNoncode, UnterminatedRawStringBlanksToEnd) {
  const std::string in = "auto s = R\"(never closes\nint x;\n";
  const std::string out = strip_noncode(in);
  EXPECT_EQ(out.find("int x;"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

TEST(StripComments, KeepsLiteralsDropsComments) {
  const std::string in =
      "{\"tool\", 3, \"name\"}, // registry row\n";
  const std::string out = strip_comments(in);
  EXPECT_NE(out.find("\"tool\""), std::string::npos);
  EXPECT_NE(out.find("\"name\""), std::string::npos);
  EXPECT_EQ(out.find("registry row"), std::string::npos);
}

TEST(Tokenizer, PositionsAreExact) {
  SourceFile sf("test.cpp", "int a;\n  foo::bar(1);\n");
  const auto& toks = sf.tokens();
  ASSERT_GE(toks.size(), 8u);
  EXPECT_EQ(toks[0].text, "int");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[0].col, 1);
  EXPECT_EQ(toks[1].text, "a");
  EXPECT_EQ(toks[1].col, 5);
  // Line 2: "  foo::bar(1);"
  EXPECT_EQ(toks[3].text, "foo");
  EXPECT_EQ(toks[3].line, 2);
  EXPECT_EQ(toks[3].col, 3);
  EXPECT_EQ(toks[4].text, "::");
  EXPECT_EQ(toks[4].kind, Token::Kind::kPunct);
  EXPECT_EQ(toks[4].col, 6);
  EXPECT_EQ(toks[5].text, "bar");
  EXPECT_EQ(toks[5].col, 8);
  EXPECT_EQ(toks[7].text, "1");
  EXPECT_EQ(toks[7].kind, Token::Kind::kNumber);
}

TEST(Tokenizer, CommentsAndStringsProduceNoTokens) {
  SourceFile sf("t.cpp", "// steady_clock\nauto s = \"rand(\";\n");
  for (const auto& t : sf.tokens()) {
    EXPECT_NE(t.text, "steady_clock");
    EXPECT_NE(t.text, "rand");
  }
}

TEST(AllowMarker, DetectedWithReason) {
  SourceFile sf("t.cpp",
                "int a;\n"
                "// bce-lint: allow(determinism): pacing only\n"
                "clock_gettime(CLOCK_MONOTONIC, &ts);\n");
  EXPECT_TRUE(sf.line_has_allow_marker(2, "determinism"));
  EXPECT_FALSE(sf.line_has_allow_marker(3, "determinism"));
  EXPECT_FALSE(sf.line_has_allow_marker(2, "layering"));
  EXPECT_EQ(sf.allow_reason(2, "determinism"), "pacing only");
}

TEST(AllowMarker, BareMarkerHasEmptyReason) {
  SourceFile sf("t.cpp", "x(); // bce-lint: allow(determinism)\n");
  EXPECT_TRUE(sf.line_has_allow_marker(1, "determinism"));
  EXPECT_EQ(sf.allow_reason(1, "determinism"), "");
}

TEST(LineText, OutOfRangeIsEmpty) {
  SourceFile sf("t.cpp", "one\ntwo\n");
  EXPECT_EQ(sf.line_text(1), "one");
  EXPECT_EQ(sf.line_text(2), "two");
  EXPECT_EQ(sf.line_text(0), "");
  EXPECT_EQ(sf.line_text(99), "");
}

}  // namespace
