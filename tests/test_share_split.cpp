// Unit and property tests for the ideal share-split solver
// (core/share_split) — the Figure 1 reference allocation.

#include <gtest/gtest.h>

#include <cmath>

#include "core/share_split.hpp"
#include "sim/rng.hpp"

namespace bce {
namespace {

ShareSplitInput::Project proj(double share, bool cpu, bool nv,
                              bool ati = false) {
  ShareSplitInput::Project p;
  p.share = share;
  p.can_use[ProcType::kCpu] = cpu;
  p.can_use[ProcType::kNvidia] = nv;
  p.can_use[ProcType::kAti] = ati;
  return p;
}

TEST(ShareSplit, PaperFigure1Example) {
  ShareSplitInput in;
  in.capacity[ProcType::kCpu] = 10.0;
  in.capacity[ProcType::kNvidia] = 20.0;
  in.projects = {proj(1.0, true, true), proj(1.0, false, true)};
  const ShareSplitResult r = ideal_share_split(in);
  EXPECT_NEAR(r.total[0], 15.0, 1e-3);
  EXPECT_NEAR(r.total[1], 15.0, 1e-3);
  EXPECT_NEAR(r.alloc[0][ProcType::kCpu], 10.0, 1e-3);
  EXPECT_NEAR(r.alloc[0][ProcType::kNvidia], 5.0, 1e-3);
  EXPECT_NEAR(r.alloc[1][ProcType::kNvidia], 15.0, 1e-3);
}

TEST(ShareSplit, SingleProjectGetsEverythingUsable) {
  ShareSplitInput in;
  in.capacity[ProcType::kCpu] = 4.0;
  in.capacity[ProcType::kNvidia] = 10.0;
  in.projects = {proj(1.0, true, false)};
  const ShareSplitResult r = ideal_share_split(in);
  EXPECT_NEAR(r.total[0], 4.0, 1e-3);
  EXPECT_NEAR(r.alloc[0][ProcType::kNvidia], 0.0, 1e-9);
}

TEST(ShareSplit, EqualSharesFullCapability) {
  ShareSplitInput in;
  in.capacity[ProcType::kCpu] = 12.0;
  in.projects = {proj(1.0, true, false), proj(1.0, true, false),
                 proj(1.0, true, false)};
  const ShareSplitResult r = ideal_share_split(in);
  for (int p = 0; p < 3; ++p) EXPECT_NEAR(r.total[p], 4.0, 1e-3);
}

TEST(ShareSplit, UnequalShares) {
  ShareSplitInput in;
  in.capacity[ProcType::kCpu] = 10.0;
  in.projects = {proj(3.0, true, false), proj(1.0, true, false)};
  const ShareSplitResult r = ideal_share_split(in);
  EXPECT_NEAR(r.total[0], 7.5, 1e-3);
  EXPECT_NEAR(r.total[1], 2.5, 1e-3);
}

TEST(ShareSplit, CapabilityConstrainedProjectCapped) {
  // Scenario 2's structure: P1 CPU-only, P2 anything; equal shares.
  ShareSplitInput in;
  in.capacity[ProcType::kCpu] = 4.0;
  in.capacity[ProcType::kNvidia] = 10.0;
  in.projects = {proj(1.0, true, false), proj(1.0, true, true)};
  const ShareSplitResult r = ideal_share_split(in);
  // P1 can at most get the whole CPU.
  EXPECT_NEAR(r.total[0], 4.0, 1e-3);
  EXPECT_NEAR(r.total[1], 10.0, 1e-3);
}

TEST(ShareSplit, ProjectWithNoUsableTypeGetsNothing) {
  ShareSplitInput in;
  in.capacity[ProcType::kCpu] = 4.0;
  in.projects = {proj(1.0, true, false), proj(1.0, false, true)};
  const ShareSplitResult r = ideal_share_split(in);
  EXPECT_NEAR(r.total[0], 4.0, 1e-3);
  EXPECT_DOUBLE_EQ(r.total[1], 0.0);
}

TEST(ShareSplit, EmptyInputs) {
  EXPECT_TRUE(ideal_share_split({}).total.empty());
  ShareSplitInput in;  // projects but zero capacity
  in.projects = {proj(1.0, true, true)};
  const ShareSplitResult r = ideal_share_split(in);
  EXPECT_DOUBLE_EQ(r.total[0], 0.0);
}

TEST(ShareSplit, ThreeTypesThreeProjects) {
  ShareSplitInput in;
  in.capacity[ProcType::kCpu] = 6.0;
  in.capacity[ProcType::kNvidia] = 6.0;
  in.capacity[ProcType::kAti] = 6.0;
  in.projects = {proj(1.0, true, false, false), proj(1.0, false, true, false),
                 proj(1.0, false, false, true)};
  const ShareSplitResult r = ideal_share_split(in);
  for (int p = 0; p < 3; ++p) EXPECT_NEAR(r.total[p], 6.0, 1e-3);
}

// Property sweep: random instances must satisfy feasibility and max-min
// optimality conditions.
class ShareSplitProperties : public ::testing::TestWithParam<int> {};

TEST_P(ShareSplitProperties, AllocationsFeasibleAndFair) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()));
  ShareSplitInput in;
  for (const auto t : kAllProcTypes) {
    in.capacity[t] = rng.uniform01() < 0.8 ? rng.uniform(1.0, 50.0) : 0.0;
  }
  const int n = 1 + static_cast<int>(rng.below(6));
  for (int p = 0; p < n; ++p) {
    ShareSplitInput::Project pr;
    pr.share = rng.uniform(0.5, 5.0);
    bool any = false;
    for (const auto t : kAllProcTypes) {
      pr.can_use[t] = rng.uniform01() < 0.6;
      any |= pr.can_use[t];
    }
    if (!any) pr.can_use[ProcType::kCpu] = true;
    in.projects.push_back(pr);
  }
  const ShareSplitResult r = ideal_share_split(in);

  // Per-type capacity respected; no allocation to unusable types.
  for (const auto t : kAllProcTypes) {
    double sum = 0.0;
    for (int p = 0; p < n; ++p) {
      EXPECT_GE(r.alloc[static_cast<std::size_t>(p)][t], -1e-6);
      if (!in.projects[static_cast<std::size_t>(p)].can_use[t]) {
        EXPECT_NEAR(r.alloc[static_cast<std::size_t>(p)][t], 0.0, 1e-9);
      }
      sum += r.alloc[static_cast<std::size_t>(p)][t];
    }
    EXPECT_LE(sum, in.capacity[t] + 1e-4);
  }

  // Totals consistent with per-type allocations.
  double grand = 0.0;
  double cap_total = 0.0;
  for (const auto t : kAllProcTypes) cap_total += in.capacity[t];
  for (int p = 0; p < n; ++p) {
    double s = 0.0;
    for (const auto t : kAllProcTypes) {
      s += r.alloc[static_cast<std::size_t>(p)][t];
    }
    EXPECT_NEAR(s, r.total[static_cast<std::size_t>(p)], 1e-6);
    grand += s;
  }
  EXPECT_LE(grand, cap_total + 1e-3);

  // Max-min fairness: a project below the final fill level must be
  // *blocked* — every type it can use is fully allocated (its allocation
  // cannot be raised without taking from someone else).
  for (const auto t : kAllProcTypes) {
    double sum = 0.0;
    for (int p = 0; p < n; ++p) sum += r.alloc[static_cast<std::size_t>(p)][t];
    for (int p = 0; p < n; ++p) {
      const auto& pr = in.projects[static_cast<std::size_t>(p)];
      const double ratio = r.total[static_cast<std::size_t>(p)] / pr.share;
      if (ratio < r.level - 1e-3 * (1.0 + r.level) && pr.can_use[t] &&
          in.capacity[t] > 0.0) {
        EXPECT_GE(sum, in.capacity[t] - 1e-3 * (1.0 + in.capacity[t]))
            << "project " << p << " is below level but type " << proc_name(t)
            << " has spare capacity";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShareSplitProperties, ::testing::Range(1, 26));

}  // namespace
}  // namespace bce
