// Policy alternatives — §6.2: "Study other policy alternatives. Over the
// last few years, scores of policy changes have been proposed ... Many of
// these merit study."
//
// Two studies:
//  P1  scheduling: JS_WRR / JS_LOCAL / JS_GLOBAL / JS_EDF (pure EDF,
//      shares ignored) on the low-slack scenario 1 and the 20-project
//      scenario 4 — exposing the waste-vs-fairness tradeoff: pure EDF
//      minimizes deadline misses but tramples resource shares.
//  P2  fetch: JF_ORIG / JF_HYSTERESIS / JF_RR (hysteresis trigger,
//      least-recently-asked project) on scenario 4 — JF_RR trades the
//      share-tracking of priority selection for perfect project rotation
//      (lower monotony at the same RPC cost).
//
// Both studies enumerate bce::policy_registry() rather than hardcoding the
// variants, so a policy registered by user code before main() (or in a
// fork of this driver) shows up in the tables automatically.

#include <iostream>

#include "core/bce.hpp"

namespace {

using namespace bce;

Metrics run(const Scenario& sc, const PolicyConfig& pol) {
  EmulationOptions opt;
  opt.policy = pol;
  return emulate(sc, opt).metrics;
}

void p1_scheduling_alternatives() {
  std::cout << "P1: scheduling alternatives (waste vs fairness)\n\n";
  struct Case {
    const char* name;
    Scenario sc;
  };
  std::vector<Case> cases;
  cases.push_back({"scenario1 slack=300", paper_scenario1(1300.0)});
  cases.push_back({"scenario4 (20 proj)", paper_scenario4()});
  cases[1].sc.duration = 5.0 * kSecondsPerDay;

  for (auto& c : cases) {
    std::cout << c.name << ":\n";
    Table t({"policy", "wasted", "share_violation", "monotony", "score"});
    for (const auto& entry : policy_registry().job_order_entries()) {
      PolicyConfig pol;
      pol.sched_by_name = entry.name;
      pol.fetch = FetchPolicy::kOrig;
      const Metrics m = run(c.sc, pol);
      t.add_row({entry.name, fmt(m.wasted_fraction()),
                 fmt(m.share_violation()), fmt(m.monotony),
                 fmt(m.weighted_score())});
    }
    t.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "expected shape: JS_EDF has the least waste on the low-slack "
               "scenario, but pays for it in fairness-adjacent metrics: the "
               "highest monotony in both scenarios (deadline order ignores "
               "project interleaving entirely).\n\n";
}

void p2_fetch_alternatives() {
  std::cout << "P2: fetch alternatives (scenario 4, JS_GLOBAL)\n\n";
  Scenario sc = paper_scenario4();
  sc.duration = 5.0 * kSecondsPerDay;
  Table t({"policy", "rpcs/job", "monotony", "share_violation", "idle"});
  for (const auto& entry : policy_registry().fetch_entries()) {
    PolicyConfig pol;
    pol.sched = JobSchedPolicy::kGlobal;
    pol.fetch_by_name = entry.name;
    const Metrics m = run(sc, pol);
    t.add_row({entry.name, fmt(m.rpcs_per_job(), 2), fmt(m.monotony),
               fmt(m.share_violation()), fmt(m.idle_fraction())});
  }
  t.print(std::cout);
  std::cout << "\nexpected shape: JF_RR matches JF_HYSTERESIS on RPC load "
               "(same trigger) but rotates projects blindly, so its share "
               "tracking is no better than the shares' own skew.\n";
}

}  // namespace

int main() {
  p1_scheduling_alternatives();
  p2_fetch_alternatives();
  return 0;
}
