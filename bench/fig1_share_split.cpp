// Figure 1 — "A project's resource share applies to the host's combined
// processing resources."
//
// Reproduces the paper's worked example analytically (the ideal max-min
// allocation) and dynamically (scenario-2-style emulation with a GPU-only
// project), printing the allocation table the figure depicts:
//   host: 10 GFLOPS CPU + 20 GFLOPS GPU; A (CPU+GPU) and B (GPU only),
//   equal shares -> A = B = 15 GFLOPS; A gets 100% CPU + 25% GPU, B 75% GPU.

#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bce;

  const int seeds = bench::seeds_from_argv(argc, argv, 1);

  std::cout << "Figure 1: resource share applies to combined resources\n\n";

  // --- analytic allocation ----------------------------------------------
  ShareSplitInput in;
  in.capacity[ProcType::kCpu] = 10e9;
  in.capacity[ProcType::kNvidia] = 20e9;
  ShareSplitInput::Project a;
  a.share = 1.0;
  a.can_use[ProcType::kCpu] = a.can_use[ProcType::kNvidia] = true;
  ShareSplitInput::Project b;
  b.share = 1.0;
  b.can_use[ProcType::kNvidia] = true;
  in.projects = {a, b};
  const ShareSplitResult split = ideal_share_split(in);

  Table t1({"project", "CPU GFLOPS", "GPU GFLOPS", "total GFLOPS",
            "GPU fraction"});
  const char* names[] = {"A (CPU+GPU)", "B (GPU only)"};
  for (std::size_t p = 0; p < 2; ++p) {
    t1.add_row({names[p], fmt(split.alloc[p][ProcType::kCpu] / 1e9, 1),
                fmt(split.alloc[p][ProcType::kNvidia] / 1e9, 1),
                fmt(split.total[p] / 1e9, 1),
                fmt(split.alloc[p][ProcType::kNvidia] / 20e9, 2)});
  }
  std::cout << "ideal allocation (paper: A=15 total w/ 25% GPU, B=15 w/ 75% "
               "GPU):\n";
  t1.print(std::cout);
  bench::write_results_csv(t1, "fig1_share_split_ideal");

  // --- emulated allocation ----------------------------------------------
  // The same situation as a dynamic scenario: 1 "CPU" instance at 10 GFLOPS
  // and 1 GPU at 20 GFLOPS, project A with CPU+GPU jobs, B with GPU jobs.
  Scenario sc;
  sc.name = "fig1";
  sc.host = HostInfo::cpu_gpu(1, 10e9, 1, 20e9);
  sc.duration = 10.0 * kSecondsPerDay;
  sc.prefs.min_queue = 0.05 * kSecondsPerDay;
  sc.prefs.max_queue = 0.25 * kSecondsPerDay;

  ProjectConfig pa;
  pa.name = "A";
  pa.resource_share = 100.0;
  JobClass ac;
  ac.name = "cpu";
  ac.flops_est = 2000.0 * 10e9;
  ac.latency_bound = 2.0 * kSecondsPerDay;
  ac.usage = ResourceUsage::cpu(1.0);
  pa.job_classes.push_back(ac);
  JobClass ag;
  ag.name = "gpu";
  ag.flops_est = 2000.0 * 20e9;
  ag.latency_bound = 2.0 * kSecondsPerDay;
  ag.usage = ResourceUsage::gpu(ProcType::kNvidia, 1.0, 0.02);
  pa.job_classes.push_back(ag);

  ProjectConfig pb;
  pb.name = "B";
  pb.resource_share = 100.0;
  JobClass bg = ag;
  pb.job_classes.push_back(bg);

  sc.projects = {pa, pb};

  bench::GridPoint pt;
  pt.label = "JS_GLOBAL";
  pt.scenario = sc;
  pt.options.policy.sched = JobSchedPolicy::kGlobal;
  const auto grid = bench::run_grid({pt}, seeds);
  const bench::SeedMean& g = grid[0];

  Table t2({"project", "share", "usage fraction (emulated)",
            "usage fraction (ideal)"});
  for (std::size_t p = 0; p < 2; ++p) {
    t2.add_row({names[p], fmt(sc.share_fraction(p), 3),
                fmt(g.mean([p](const Metrics& m) { return m.usage_fraction[p]; }),
                    3),
                fmt(split.total[p] / 30e9, 3)});
  }
  std::cout << "\nemulated 10-day usage under JS_GLOBAL (" << seeds
            << " seed(s)):\n";
  t2.print(std::cout);
  bench::write_results_csv(t2, "fig1_share_split_emulated");
  std::cout << "\n" << g.runs.front().summary() << "\n";
  return 0;
}
