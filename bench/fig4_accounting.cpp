// Figure 4 — "A resource-share accounting policy that spans processor
// types reduces resource share violation."
//
// Scenario 2: 4 CPUs + 1 GPU (10x a CPU), two equal-share projects —
// project 1 CPU-only, project 2 CPU+GPU. JS_LOCAL (per-type debt) divides
// the CPU evenly, so project 2 (which also owns the whole GPU) ends far
// over its share; JS_GLOBAL (REC spanning types) gives the CPU to the
// CPU-only project, the best any scheduler can do.

#include <cmath>
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bce;

  const int seeds = bench::seeds_from_argv(argc, argv, 3);
  const Scenario base = paper_scenario2();

  // The constrained optimum for reference: P1 can only use the 4 GFLOPS of
  // CPU; P2 can use everything.
  ShareSplitInput in;
  in.capacity[ProcType::kCpu] = base.host.peak_flops(ProcType::kCpu);
  in.capacity[ProcType::kNvidia] = base.host.peak_flops(ProcType::kNvidia);
  ShareSplitInput::Project p1;
  p1.share = 1.0;
  p1.can_use[ProcType::kCpu] = true;
  ShareSplitInput::Project p2;
  p2.share = 1.0;
  p2.can_use[ProcType::kCpu] = p2.can_use[ProcType::kNvidia] = true;
  in.projects = {p1, p2};
  const ShareSplitResult ideal = ideal_share_split(in);
  const double total_cap = base.host.total_peak_flops();

  struct Policy {
    const char* name;
    JobSchedPolicy sched;
  };
  const std::vector<Policy> policies = {{"JS_LOCAL", JobSchedPolicy::kLocal},
                                        {"JS_GLOBAL", JobSchedPolicy::kGlobal}};

  std::vector<bench::GridPoint> points;
  for (const auto& pol : policies) {
    bench::GridPoint pt;
    pt.label = pol.name;
    pt.scenario = base;
    pt.options.policy.sched = pol.sched;
    points.push_back(std::move(pt));
  }
  const auto grid = bench::run_grid(points, seeds);

  std::cout << "Figure 4: resource-share violation, scenario 2 (" << seeds
            << " seed(s))\n\n";
  Table table({"policy", "share_violation", "P1(cpu-only) usage",
               "P2(cpu+gpu) usage", "idle"});
  for (const auto& g : grid) {
    table.add_row(
        {g.label,
         fmt(g.mean([](const Metrics& m) { return m.share_violation(); })),
         fmt(g.mean([](const Metrics& m) { return m.usage_fraction[0]; })),
         fmt(g.mean([](const Metrics& m) { return m.usage_fraction[1]; })),
         fmt(g.mean([](const Metrics& m) { return m.idle_fraction(); }))});
  }
  table.add_row({"(ideal)",
                 fmt(std::sqrt(((ideal.total[0] / total_cap - 0.5) *
                                    (ideal.total[0] / total_cap - 0.5) +
                                (ideal.total[1] / total_cap - 0.5) *
                                    (ideal.total[1] / total_cap - 0.5)) /
                               2.0)),
                 fmt(ideal.total[0] / total_cap), fmt(ideal.total[1] / total_cap),
                 "0.000"});
  table.print(std::cout);
  std::cout << '\n';
  bench::write_results_csv(table, "fig4_accounting");
  std::cout << "\npaper shape: JS_LOCAL splits the CPU evenly (higher "
               "violation); JS_GLOBAL approaches the constrained optimum.\n";
  return 0;
}
