// Figure 5 — "A job-fetch policy with hysteresis reduces the number of
// scheduler RPCs."
//
// Scenario 4 (CPU+GPU host, twenty projects with varying job types),
// JF_ORIG vs JF_HYSTERESIS under JS_GLOBAL. Paper shape: hysteresis cuts
// RPCs per job substantially (each RPC fetches many jobs) while monotony
// rises (the client may hold jobs from only one project for some periods).

#include <iostream>

#include "core/bce.hpp"

int main(int argc, char** argv) {
  using namespace bce;

  const int seeds = argc > 1 ? std::atoi(argv[1]) : 2;
  const Scenario base = paper_scenario4();

  struct Policy {
    const char* name;
    FetchPolicy fetch;
  };
  const std::vector<Policy> policies = {{"JF_ORIG", FetchPolicy::kOrig},
                                        {"JF_HYSTERESIS", FetchPolicy::kHysteresis}};

  std::vector<RunSpec> specs;
  for (const auto& pol : policies) {
    for (int s = 0; s < seeds; ++s) {
      RunSpec spec;
      spec.scenario = base;
      spec.scenario.seed = static_cast<std::uint64_t>(s + 1);
      spec.options.policy.sched = JobSchedPolicy::kGlobal;
      spec.options.policy.fetch = pol.fetch;
      spec.label = pol.name;
      specs.push_back(std::move(spec));
    }
  }
  const auto results = run_batch(specs);

  std::cout << "Figure 5: job-fetch hysteresis, scenario 4 (" << seeds
            << " seed(s))\n\n";
  Table table({"policy", "rpcs/job", "rpcs/job[0,1]", "monotony", "idle",
               "wasted", "jobs", "rpcs"});
  std::size_t idx = 0;
  for (const auto& pol : policies) {
    double rpj = 0.0;
    double rpn = 0.0;
    double mono = 0.0;
    double idle = 0.0;
    double wasted = 0.0;
    double jobs = 0.0;
    double rpcs = 0.0;
    for (int s = 0; s < seeds; ++s) {
      const Metrics& m = results[idx++].result.metrics;
      rpj += m.rpcs_per_job();
      rpn += m.rpcs_per_job_norm();
      mono += m.monotony;
      idle += m.idle_fraction();
      wasted += m.wasted_fraction();
      jobs += static_cast<double>(m.n_jobs_completed);
      rpcs += static_cast<double>(m.n_rpcs);
    }
    table.add_row({pol.name, fmt(rpj / seeds, 2), fmt(rpn / seeds),
                   fmt(mono / seeds), fmt(idle / seeds), fmt(wasted / seeds),
                   fmt(jobs / seeds, 0), fmt(rpcs / seeds, 0)});
  }
  table.print(std::cout);
  std::cout << "\npaper shape: JF_HYSTERESIS has far fewer RPCs per job; "
               "monotony increases because each RPC fetches many jobs from "
               "one project.\n";
  return 0;
}
