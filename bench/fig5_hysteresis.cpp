// Figure 5 — "A job-fetch policy with hysteresis reduces the number of
// scheduler RPCs."
//
// Scenario 4 (CPU+GPU host, twenty projects with varying job types),
// JF_ORIG vs JF_HYSTERESIS under JS_GLOBAL. Paper shape: hysteresis cuts
// RPCs per job substantially (each RPC fetches many jobs) while monotony
// rises (the client may hold jobs from only one project for some periods).

#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bce;

  const int seeds = bench::seeds_from_argv(argc, argv, 2);
  const Scenario base = paper_scenario4();

  struct Policy {
    const char* name;
    FetchPolicy fetch;
  };
  const std::vector<Policy> policies = {{"JF_ORIG", FetchPolicy::kOrig},
                                        {"JF_HYSTERESIS", FetchPolicy::kHysteresis}};

  std::vector<bench::GridPoint> points;
  for (const auto& pol : policies) {
    bench::GridPoint pt;
    pt.label = pol.name;
    pt.scenario = base;
    pt.options.policy.sched = JobSchedPolicy::kGlobal;
    pt.options.policy.fetch = pol.fetch;
    points.push_back(std::move(pt));
  }
  const auto grid = bench::run_grid(points, seeds);

  std::cout << "Figure 5: job-fetch hysteresis, scenario 4 (" << seeds
            << " seed(s))\n\n";
  Table table({"policy", "rpcs/job", "rpcs/job[0,1]", "monotony", "idle",
               "wasted", "jobs", "rpcs"});
  for (const auto& g : grid) {
    table.add_row(
        {g.label,
         fmt(g.mean([](const Metrics& m) { return m.rpcs_per_job(); }), 2),
         fmt(g.mean([](const Metrics& m) { return m.rpcs_per_job_norm(); })),
         fmt(g.mean([](const Metrics& m) { return m.monotony; })),
         fmt(g.mean([](const Metrics& m) { return m.idle_fraction(); })),
         fmt(g.mean([](const Metrics& m) { return m.wasted_fraction(); })),
         fmt(g.mean([](const Metrics& m) {
           return static_cast<double>(m.n_jobs_completed);
         }), 0),
         fmt(g.mean(
             [](const Metrics& m) { return static_cast<double>(m.n_rpcs); }),
             0)});
  }
  table.print(std::cout);
  std::cout << '\n';
  bench::write_results_csv(table, "fig5_hysteresis");
  std::cout << "\npaper shape: JF_HYSTERESIS has far fewer RPCs per job; "
               "monotony increases because each RPC fetches many jobs from "
               "one project.\n";
  return 0;
}
