// Degradation study: how gracefully does each scheduling policy lose
// performance as the environment gets hostile? (docs/faults.md)
//
//   D1  fault presets (off/light/heavy) across the full policy matrix
//   D2  job compute-error rate sweep        (throughput + wasted capacity)
//   D3  host crash MTBF x checkpoint period (recovery interplay)
//   D4  scheduler-RPC loss sweep            (retry traffic, orphaned jobs)
//   D5  transfer error rate, resumable vs restart-from-zero downloads
//   D6  server-dispatch frontier: every registered dispatch policy on a
//       replicated, battery-powered host as job errors grow
//
// All runs share a seed, so every row of a table sees the same availability
// and job-size draws; only the fault channels differ.
//
// SIGINT is cooperative: each sweep checks the flag between rows and an
// interrupt flushes the rows computed so far (printed and persisted under
// results/) instead of discarding them.

#include <cmath>
#include <iostream>

#include "common.hpp"
#include "core/bce.hpp"
#include "server/dispatch_policy.hpp"

namespace {

using namespace bce;

Metrics run(const Scenario& sc, const PolicyConfig& pol) {
  EmulationOptions opt;
  opt.policy = pol;
  return emulate(sc, opt).metrics;
}

PolicyConfig base_policy(const std::string& sched = "JS_GLOBAL",
                         const std::string& fetch = "JF_HYSTERESIS") {
  PolicyConfig pol;
  pol.sched_by_name = sched;
  pol.fetch_by_name = fetch;
  return pol;
}

void fault_row(Table& t, const std::string& label, const Metrics& m) {
  t.add_row({label, fmt(m.weighted_score()), fmt(m.wasted_fraction()),
             fmt(m.failure_wasted_fraction()), fmt(m.retries_per_job(), 2),
             fmt(m.mean_recovery_time(), 0),
             std::to_string(m.n_jobs_completed)});
}

int d1_policy_matrix(unsigned threads) {
  std::cout << "\nD1: fault presets across the policy registry (scenario 2, "
               "10 days)\n";
  struct Level {
    const char* name;
    FaultPlan plan;
  };
  const Level levels[] = {{"off", FaultPlan{}},
                          {"light", FaultPlan::light()},
                          {"heavy", FaultPlan::heavy()}};
  for (const Level& lv : levels) {
    if (bench::interrupted()) return 130;
    Scenario sc = paper_scenario2();
    sc.faults = lv.plan;
    // Registry-driven: every registered (scheduling, fetch) pair, so a
    // policy registered by user code is swept automatically.
    const std::vector<RunSpec> specs = policy_matrix_specs(sc, {});
    const auto results = run_batch(specs, threads);
    std::cout << "faults=" << lv.name << ":\n";
    Table t({"policy", "score", "wasted", "fail_wasted", "retries/job",
             "recovery(s)", "completed"});
    for (const auto& r : results) {
      fault_row(t, r.label, r.result.metrics);
    }
    t.print(std::cout);
  }
  return 0;
}

int d2_job_errors() {
  std::cout << "\nD2: job compute-error rate (scenario 2; errors waste the "
               "FLOPs spent and free the server slot on report)\n";
  Table t({"error rate", "score", "wasted", "fail_wasted", "retries/job",
           "recovery(s)", "completed"});
  for (const double rate : {0.0, 0.02, 0.05, 0.1, 0.2}) {
    if (bench::interrupted()) return bench::interrupt_flush(t, "degradation_d2");
    Scenario sc = paper_scenario2();
    sc.faults.job_error_rate = rate;
    fault_row(t, fmt(rate, 2), run(sc, base_policy()));
  }
  t.print(std::cout);
  return 0;
}

int d3_crashes_vs_checkpoints() {
  std::cout << "\nD3: host crash MTBF x checkpoint period (scenario 1, slack "
               "1500 s; crashes roll running work back to the last "
               "checkpoint)\n";
  Table t({"MTBF", "checkpoint", "crashes", "wasted", "recovery(s)",
           "completed"});
  for (const double mtbf : {kSecondsPerDay, kSecondsPerDay / 4.0}) {
    for (const double cp : {60.0, 600.0, kNever}) {
      if (bench::interrupted()) {
        return bench::interrupt_flush(t, "degradation_d3");
      }
      Scenario sc = paper_scenario1(1500.0);
      sc.faults.crash_mtbf = mtbf;
      sc.faults.crash_reboot_delay = 300.0;
      for (auto& p : sc.projects) {
        for (auto& jc : p.job_classes) jc.checkpoint_period = cp;
      }
      const Metrics m = run(sc, base_policy());
      t.add_row({fmt(mtbf / 3600.0, 0) + "h",
                 std::isfinite(cp) ? fmt(cp, 0) : "never",
                 std::to_string(m.n_host_crashes), fmt(m.wasted_fraction()),
                 fmt(m.mean_recovery_time(), 0),
                 std::to_string(m.n_jobs_completed)});
    }
  }
  t.print(std::cout);
  return 0;
}

int d4_rpc_loss() {
  std::cout << "\nD4: scheduler-RPC loss (scenario 4; lost replies orphan "
               "assigned jobs until the server reclaims them)\n";
  Table t({"loss rate", "rpcs", "lost", "orphaned", "retries/job", "idle",
           "completed"});
  for (const double rate : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    if (bench::interrupted()) return bench::interrupt_flush(t, "degradation_d4");
    Scenario sc = paper_scenario4();
    sc.faults.rpc_loss_rate = rate;
    sc.faults.rpc_timeout = 3600.0;
    const Metrics m = run(sc, base_policy());
    t.add_row({fmt(rate, 2), std::to_string(m.n_rpcs),
               std::to_string(m.n_rpcs_lost),
               std::to_string(m.n_jobs_orphaned),
               fmt(m.retries_per_job(), 2), fmt(m.idle_fraction()),
               std::to_string(m.n_jobs_completed)});
  }
  t.print(std::cout);
  return 0;
}

int d5_transfer_errors() {
  std::cout << "\nD5: download error rate, resumable vs restart-from-zero "
               "(scenario 1, slack 1800 s, 0.2 MB/s link, 0.1 GB inputs)\n";
  Table t({"error rate", "resumable", "xfer retries", "wasted", "idle",
           "completed"});
  for (const double rate : {0.0, 0.1, 0.25}) {
    for (const bool resumable : {true, false}) {
      if (rate == 0.0 && !resumable) continue;  // identical to resumable row
      if (bench::interrupted()) {
        return bench::interrupt_flush(t, "degradation_d5");
      }
      Scenario sc = paper_scenario1(1800.0);
      sc.host.download_bandwidth_bps = 2e5;
      for (auto& p : sc.projects) {
        p.transfers_resumable = resumable;
        for (auto& jc : p.job_classes) jc.input_bytes = 1e8;
      }
      sc.faults.transfer_error_rate = rate;
      sc.faults.transfer_retry_min = 30.0;
      const Metrics m = run(sc, base_policy());
      t.add_row({fmt(rate, 2), resumable ? "yes" : "no",
                 std::to_string(m.n_transfer_retries),
                 fmt(m.wasted_fraction()), fmt(m.idle_fraction()),
                 std::to_string(m.n_jobs_completed)});
    }
  }
  t.print(std::cout);
  return 0;
}

int d6_dispatch_frontier() {
  std::cout << "\nD6: server-dispatch frontier (scenario 2 with replicas=3 "
               "quorum=2, laptop device: AC ~6h on/2h off, battery 30%/h "
               "discharge; registry-driven over every dispatch policy)\n";
  Table t({"dispatch", "error rate", "score", "quorum", "repl_wasted",
           "workunits", "completed"});
  for (const auto& e : server_policy_registry().dispatch_entries()) {
    for (const double rate : {0.0, 0.1, 0.3}) {
      if (bench::interrupted()) {
        return bench::interrupt_flush(t, "degradation_d6");
      }
      Scenario sc = paper_scenario2();
      for (auto& p : sc.projects) {
        p.target_replicas = 3;
        p.quorum = 2;
      }
      sc.host.device.on_ac = OnOffSpec::markov(6.0 * 3600.0, 2.0 * 3600.0);
      sc.host.device.battery_charge = 0.8;
      sc.host.device.battery_discharge = 0.3;
      sc.host.device.battery_recharge = 0.6;
      sc.faults.job_error_rate = rate;
      PolicyConfig pol = base_policy();
      pol.dispatch_by_name = e.name;
      const Metrics m = run(sc, pol);
      t.add_row({e.name, fmt(rate, 2), fmt(m.weighted_score()),
                 fmt(m.quorum_rate()), fmt(m.replica_wasted_fraction()),
                 std::to_string(m.n_workunits),
                 std::to_string(m.n_jobs_completed)});
    }
  }
  t.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned threads = bce::bench::threads_from_argv(argc, argv, 1);
  bce::bench::install_sigint_handler();
  std::cout << "=== Degradation study (fault injection) ===\n";
  if (const int rc = d1_policy_matrix(threads)) return rc;
  if (const int rc = d2_job_errors()) return rc;
  if (const int rc = d3_crashes_vs_checkpoints()) return rc;
  if (const int rc = d4_rpc_loss()) return rc;
  if (const int rc = d5_transfer_errors()) return rc;
  if (const int rc = d6_dispatch_frontier()) return rc;
  return 0;
}
