// Micro-benchmarks for the emulator's hot kernels: event queue, RR-sim,
// a scheduler pass, trace emission, and end-to-end emulation throughput
// (simulated seconds per wall second).

#include <benchmark/benchmark.h>

#include <sstream>

#include "core/bce.hpp"

namespace {

using namespace bce;

void BM_EventQueue(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    EventQueue q;
    for (std::size_t i = 0; i < n; ++i) {
      q.schedule(static_cast<double>((i * 7919) % 100000), EventKind::kUser);
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueue)->Arg(1000)->Arg(10000);

// Cancellation-heavy churn: a fixed working set of timers cancelled and
// re-armed on (nearly) every step — the emulator's dominant pattern, where
// schedule_task_event/schedule_transfer_event kill and replace per-task
// timers on each dispatch, so most events die by cancel(), not pop().
void BM_EventQueueCancelHeavy(benchmark::State& state) {
  const auto n_timers = static_cast<std::size_t>(state.range(0));
  EventQueue q;
  std::vector<EventHandle> timers(n_timers);
  double now = 0.0;
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  for (std::size_t i = 0; i < n_timers; ++i) {
    timers[i] = q.schedule(now + static_cast<double>(i + 1), EventKind::kUser);
  }
  for (auto _ : state) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const std::size_t i = static_cast<std::size_t>(x % n_timers);
    q.cancel(timers[i]);
    now += 0.25;
    timers[i] =
        q.schedule(now + 1.0 + static_cast<double>(x % 1000), EventKind::kUser);
    while (!q.empty() && q.next_time() <= now) {
      const Event ev = q.pop();
      for (auto& h : timers) {
        if (h == ev.handle) {
          h = q.schedule(now + 1.0 + static_cast<double>(x % 97),
                         EventKind::kUser);
        }
      }
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventQueueCancelHeavy)->Arg(64)->Arg(512);

/// Build a queue of n jobs across n_proj projects for RR-sim benchmarking.
std::vector<Result> make_jobs(int n, int n_proj) {
  std::vector<Result> jobs(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto& r = jobs[static_cast<std::size_t>(i)];
    r.id = i;
    r.project = i % n_proj;
    r.flops_est = r.flops_total = 1e12 + 1e10 * i;
    r.received = static_cast<double>(i);
    r.deadline = 86400.0 * (1 + i % 5);
    r.usage = ResourceUsage::cpu(1.0);
  }
  return jobs;
}

void BM_RrSim(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int n_proj = 4;
  HostInfo host = HostInfo::cpu_only(4, 1e9);
  Preferences prefs;
  PerProc<double> avail;
  avail.fill(1.0);
  RrSim rr(host, prefs, avail);
  std::vector<double> shares(n_proj, 1.0 / n_proj);
  auto jobs = make_jobs(n, n_proj);
  std::vector<Result*> ptrs;
  for (auto& j : jobs) ptrs.push_back(&j);

  for (auto _ : state) {
    benchmark::DoNotOptimize(rr.run(0.0, ptrs, shares));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_RrSim)->Arg(16)->Arg(64)->Arg(256);

// Cache behavior of RrSim::run_cached. "hit": every pass replays the same
// (state_version, now) key, so after the first miss each iteration is a
// memo lookup — this is the fetch-after-reschedule path in ClientRuntime.
// "miss": the version is bumped every pass (as a job arrival/completion
// would), so each iteration pays the full simulation. The hit/miss ratio
// is the per-pass cost the versioned cache avoids.
void BM_RrSimCached(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const bool perturb = state.range(1) != 0;
  const int n_proj = 4;
  HostInfo host = HostInfo::cpu_only(4, 1e9);
  Preferences prefs;
  PerProc<double> avail;
  avail.fill(1.0);
  RrSim rr(host, prefs, avail);
  std::vector<double> shares(n_proj, 1.0 / n_proj);
  auto jobs = make_jobs(n, n_proj);
  std::vector<Result*> ptrs;
  for (auto& j : jobs) ptrs.push_back(&j);

  std::uint64_t version = 1;
  for (auto _ : state) {
    if (perturb) ++version;
    benchmark::DoNotOptimize(rr.run_cached(version, 0.0, ptrs, shares));
  }
  const auto& stats = rr.cache_stats();
  state.counters["hits"] = static_cast<double>(stats.hits);
  state.counters["misses"] = static_cast<double>(stats.misses);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_RrSimCached)
    ->ArgsProduct({{16, 64, 256}, {0, 1}})
    ->ArgNames({"jobs", "perturb"});

void BM_SchedulerPass(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int n_proj = 4;
  HostInfo host = HostInfo::cpu_only(4, 1e9);
  Preferences prefs;
  PolicyConfig policy;
  JobScheduler sched(host, prefs, policy);
  Accounting acct(host, std::vector<double>(n_proj, 0.25), kSecondsPerDay);
  Trace log;
  auto jobs = make_jobs(n, n_proj);
  std::vector<Result*> ptrs;
  for (auto& j : jobs) ptrs.push_back(&j);

  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched.schedule(0.0, ptrs, acct, true, true, log));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_SchedulerPass)->Arg(16)->Arg(64)->Arg(256);

// Disabled-path cost of a trace emit: no sinks, all categories off. This is
// what every decision point in the emulator pays when tracing is off; the
// contract (trace.hpp) is two branches and no allocation.
void BM_TraceEmitDisabled(benchmark::State& state) {
  Trace trace;
  TraceEvent ev{.at = 0.0,
                .kind = TraceKind::kJobStarted,
                .project = 1,
                .job = 42};
  for (auto _ : state) {
    ev.at += 1.0;
    trace.emit(ev);
    benchmark::DoNotOptimize(ev.at);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TraceEmitDisabled);

// Enabled-path cost: full JSONL serialization into a buffered stream.
void BM_TraceEmitJsonl(benchmark::State& state) {
  std::ostringstream os;
  Trace trace;
  JsonlSink sink(os);
  trace.add_sink(&sink);
  trace.enable_all();
  TraceEvent ev{.at = 0.0,
                .kind = TraceKind::kServerSent,
                .project = 1,
                .ptype = 0,
                .v0 = 3.0,
                .v1 = 86400.0,
                .v2 = 90000.0,
                .str = "einstein"};
  std::size_t emitted = 0;
  for (auto _ : state) {
    ev.at += 1.0;
    trace.emit(ev);
    if (++emitted == 4096) {  // bound the buffer without per-emit churn
      os.str(std::string());
      emitted = 0;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TraceEmitJsonl);

void BM_EmulateOneDay(benchmark::State& state) {
  Scenario sc = paper_scenario2();
  sc.duration = 1.0 * kSecondsPerDay;
  EmulationOptions opt;
  for (auto _ : state) {
    benchmark::DoNotOptimize(emulate(sc, opt));
  }
  // Report simulated seconds per wall second.
  state.counters["sim_days/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EmulateOneDay)->Unit(benchmark::kMillisecond);

// Same emulation with full JSONL decision tracing attached — the difference
// against BM_EmulateOneDay is the all-in cost of tracing a run.
void BM_EmulateOneDayTraced(benchmark::State& state) {
  Scenario sc = paper_scenario2();
  sc.duration = 1.0 * kSecondsPerDay;
  for (auto _ : state) {
    std::ostringstream os;
    Trace trace;
    JsonlSink sink(os);
    trace.add_sink(&sink);
    trace.enable_all();
    EmulationOptions opt;
    opt.trace = &trace;
    benchmark::DoNotOptimize(emulate(sc, opt));
    benchmark::DoNotOptimize(os);
  }
  state.counters["sim_days/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EmulateOneDayTraced)->Unit(benchmark::kMillisecond);

// Many small batches through the controller: 8 hundredth-day emulations
// per run_batch call. With runs this short the per-batch fan-out overhead
// (thread create/join before the persistent pool; wake/park handshakes
// after) is a visible share of the wall time — the shape of sweep drivers
// and the fleet controller.
void BM_ControllerManyBatches(benchmark::State& state) {
  const auto n_threads = static_cast<unsigned>(state.range(0));
  std::vector<RunSpec> specs(8);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].label = "spec" + std::to_string(i);
    specs[i].scenario = paper_scenario1();
    specs[i].scenario.duration = 0.01 * kSecondsPerDay;
    specs[i].scenario.seed = i + 1;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_batch(specs, n_threads));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(specs.size()));
}
BENCHMARK(BM_ControllerManyBatches)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
