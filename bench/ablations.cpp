// Ablation studies for the design choices DESIGN.md calls out and the
// paper's §6.2 extension list:
//
//   A1  server deadline check on/off          (low-slack scenario)
//   A2  client fetch deadline-suppression     (low-slack scenario)
//   A3  checkpoint discipline: 60 s / 600 s / never
//   A4  systematic runtime-estimate error     (est_error 0.25x..4x)
//   A5  EDF vs least-laxity-first ordering    (multiprocessor, tight deadlines)
//   A6  memory-constrained host               (RAM admits only half the CPUs)
//   A7  work-buffer sizing vs RPC load        (min_queue sweep, JF_HYSTERESIS)
//   A8  file-transfer delay before jobs become runnable
//
// Each table prints the figures of merit that the ablated mechanism is
// supposed to move.

#include <iostream>

#include "core/bce.hpp"

namespace {

using namespace bce;

Metrics run(const Scenario& sc, const PolicyConfig& pol) {
  EmulationOptions opt;
  opt.policy = pol;
  return emulate(sc, opt).metrics;
}

/// Baseline policy for the ablations, resolved through
/// bce::policy_registry() by name — the single place this driver selects
/// policies, so swapping the baseline (or pointing it at a policy
/// registered outside the library) is a one-line change.
PolicyConfig base_policy(const std::string& sched = "JS_GLOBAL",
                         const std::string& fetch = "JF_ORIG") {
  PolicyConfig pol;
  pol.sched_by_name = sched;
  pol.fetch_by_name = fetch;
  return pol;
}

void a1_a2_deadline_mechanisms() {
  std::cout << "\nA1/A2: deadline mechanisms in the low-slack scenario "
               "(scenario 1, slack 300 s)\n";
  Table t({"server_check", "fetch_suppression", "wasted", "idle",
           "share_violation"});
  for (const bool server : {false, true}) {
    for (const bool suppress : {false, true}) {
      PolicyConfig pol = base_policy();
      pol.server_deadline_check = server;
      pol.fetch_deadline_suppression = suppress;
      const Metrics m = run(paper_scenario1(1300.0), pol);
      t.add_row({server ? "on" : "off", suppress ? "on" : "off",
                 fmt(m.wasted_fraction()), fmt(m.idle_fraction()),
                 fmt(m.share_violation())});
    }
  }
  t.print(std::cout);
}

void a3_checkpointing() {
  std::cout << "\nA3: checkpoint discipline (scenario 1, slack 500 s; "
               "preemption rolls back to the last checkpoint)\n";
  Table t({"checkpoint period", "wasted", "idle", "jobs completed"});
  for (const double cp : {60.0, 600.0, kNever}) {
    Scenario sc = paper_scenario1(1500.0);
    for (auto& p : sc.projects) {
      for (auto& jc : p.job_classes) jc.checkpoint_period = cp;
    }
    PolicyConfig pol = base_policy();
    const Metrics m = run(sc, pol);
    t.add_row({std::isfinite(cp) ? fmt(cp, 0) : "never",
               fmt(m.wasted_fraction()), fmt(m.idle_fraction()),
               std::to_string(m.n_jobs_completed)});
  }
  t.print(std::cout);
}

void a4_estimate_error() {
  std::cout << "\nA4: systematic runtime-estimate error (scenario 1, slack "
               "800 s; actual = estimate x err)\n";
  Table t({"est_error", "wasted", "idle", "rpcs/job"});
  for (const double err : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    Scenario sc = paper_scenario1(1800.0);
    for (auto& p : sc.projects) {
      for (auto& jc : p.job_classes) jc.est_error = err;
    }
    PolicyConfig pol = base_policy();
    const Metrics m = run(sc, pol);
    t.add_row({fmt(err, 2), fmt(m.wasted_fraction()), fmt(m.idle_fraction()),
               fmt(m.rpcs_per_job(), 2)});
  }
  t.print(std::cout);
}

void a5_edf_vs_llf() {
  std::cout << "\nA5: EDF vs least-laxity ordering of endangered jobs "
               "(4 CPUs, mixed-size tight-deadline jobs)\n";
  // Mixed job sizes with deadlines tight enough that ordering matters.
  Scenario sc;
  sc.name = "a5";
  sc.host = HostInfo::cpu_only(4, 1e9);
  sc.duration = 5.0 * kSecondsPerDay;
  sc.prefs.min_queue = 2.0 * kSecondsPerHour;
  sc.prefs.max_queue = 6.0 * kSecondsPerHour;
  for (int i = 0; i < 3; ++i) {
    ProjectConfig p;
    p.name = "p" + std::to_string(i);
    p.resource_share = 100.0;
    JobClass jc;
    jc.name = "tight";
    jc.flops_est = (1800.0 + 1800.0 * i) * 1e9;
    jc.flops_cv = 0.2;
    jc.latency_bound = jc.flops_est / 1e9 * (3.5 + 0.5 * i);
    jc.usage = ResourceUsage::cpu(1.0);
    p.job_classes.push_back(jc);
    sc.projects.push_back(p);
  }
  Table t({"ordering", "wasted", "jobs missed", "jobs completed"});
  for (const auto ord : {EndangeredOrder::kEdf, EndangeredOrder::kLeastLaxity}) {
    PolicyConfig pol = base_policy("JS_GLOBAL", "JF_HYSTERESIS");
    pol.endangered_order = ord;
    const Metrics m = run(sc, pol);
    t.add_row({ord == EndangeredOrder::kEdf ? "EDF" : "least-laxity",
               fmt(m.wasted_fraction()), std::to_string(m.n_jobs_missed),
               std::to_string(m.n_jobs_completed)});
  }
  t.print(std::cout);
}

void a6_memory_limit() {
  std::cout << "\nA6: memory-constrained host (4 CPUs; each job needs 1.5 GB; "
               "RAM budget sweep)\n";
  Table t({"host RAM (GB)", "idle", "wasted", "jobs completed"});
  for (const double gb : {8.0, 4.0, 2.0}) {
    Scenario sc = paper_scenario2();
    sc.host.ram_bytes = gb * 1e9;
    for (auto& p : sc.projects) {
      for (auto& jc : p.job_classes) jc.ram_bytes = 1.5e9;
    }
    PolicyConfig pol = base_policy("JS_GLOBAL", "JF_HYSTERESIS");
    const Metrics m = run(sc, pol);
    t.add_row({fmt(gb, 0), fmt(m.idle_fraction()), fmt(m.wasted_fraction()),
               std::to_string(m.n_jobs_completed)});
  }
  t.print(std::cout);
}

void a7_buffer_sizing() {
  std::cout << "\nA7: work-buffer sizing vs scheduler-RPC load "
               "(scenario 4, JF_HYSTERESIS; max_queue = 3 x min_queue)\n";
  Table t({"min_queue (h)", "rpcs/job", "monotony", "idle"});
  for (const double hours : {0.5, 2.0, 8.0, 24.0}) {
    Scenario sc = paper_scenario4();
    sc.prefs.min_queue = hours * 3600.0;
    sc.prefs.max_queue = 3.0 * sc.prefs.min_queue;
    PolicyConfig pol = base_policy("JS_GLOBAL", "JF_HYSTERESIS");
    const Metrics m = run(sc, pol);
    t.add_row({fmt(hours, 1), fmt(m.rpcs_per_job(), 3), fmt(m.monotony),
               fmt(m.idle_fraction())});
  }
  t.print(std::cout);
}

void a9_transfer_ordering() {
  std::cout << "\nA9: download-ordering policy on a slow link "
               "(scenario 1, slack 800 s, 0.2 MB/s, 0.1 GB inputs)\n";
  Table t({"ordering", "wasted", "idle", "jobs completed"});
  for (const auto ord : {TransferOrder::kFairShare, TransferOrder::kFifo,
                         TransferOrder::kEdf}) {
    Scenario sc = paper_scenario1(1800.0);
    sc.host.download_bandwidth_bps = 2e5;
    for (auto& p : sc.projects) {
      for (auto& jc : p.job_classes) jc.input_bytes = 1e8;  // ~500 s alone
    }
    PolicyConfig pol = base_policy();
    pol.transfer_order = ord;
    const Metrics m = run(sc, pol);
    const char* name = ord == TransferOrder::kFairShare ? "fair-share"
                       : ord == TransferOrder::kFifo    ? "FIFO"
                                                        : "EDF";
    t.add_row({name, fmt(m.wasted_fraction()), fmt(m.idle_fraction()),
               std::to_string(m.n_jobs_completed)});
  }
  t.print(std::cout);
}

void a10_duration_correction() {
  // DCF matters when the client sizes *batches* from wrong estimates:
  // under JF_HYSTERESIS an underestimate makes every fill-to-max fetch
  // bring far more (doomed, low-slack) work than intended; once the client
  // learns the true ratio, its shortfall computation self-corrects.
  std::cout << "\nA10: duration-correction factor under systematic "
               "underestimates (JF_HYSTERESIS batches, slack 50% of true "
               "runtime)\n";
  Table t({"est_error", "DCF", "wasted", "jobs fetched", "jobs missed"});
  for (const double err : {1.0, 2.0, 4.0}) {
    for (const bool dcf : {false, true}) {
      Scenario sc = paper_scenario1(1.5 * 1000.0 * err);
      sc.prefs.min_queue = 2000.0;
      sc.prefs.max_queue = 8000.0;
      for (auto& p : sc.projects) {
        for (auto& jc : p.job_classes) jc.est_error = err;
      }
      PolicyConfig pol = base_policy("JS_GLOBAL", "JF_HYSTERESIS");
      pol.use_duration_correction = dcf;
      const Metrics m = run(sc, pol);
      t.add_row({fmt(err, 1), dcf ? "on" : "off", fmt(m.wasted_fraction()),
                 std::to_string(m.n_jobs_fetched),
                 std::to_string(m.n_jobs_missed)});
    }
  }
  t.print(std::cout);
}

void a11_leave_in_memory() {
  std::cout << "\nA11: leave-apps-in-memory with rare checkpoints and an "
               "intermittent host\n";
  Table t({"leave_in_memory", "checkpoint", "jobs completed", "idle",
           "wasted"});
  for (const bool keep : {false, true}) {
    for (const double cp : {600.0, kNever}) {
      Scenario sc = paper_scenario1(4000.0);
      sc.availability.host_on = OnOffSpec::markov(3600.0, 900.0);
      sc.prefs.leave_apps_in_memory = keep;
      for (auto& p : sc.projects) {
        for (auto& jc : p.job_classes) jc.checkpoint_period = cp;
      }
      PolicyConfig pol = base_policy();
      const Metrics m = run(sc, pol);
      t.add_row({keep ? "yes" : "no", std::isfinite(cp) ? fmt(cp, 0) : "never",
                 std::to_string(m.n_jobs_completed), fmt(m.idle_fraction()),
                 fmt(m.wasted_fraction())});
    }
  }
  t.print(std::cout);
}

void a8_transfer_delay() {
  std::cout << "\nA8: input-file transfer delay before jobs become runnable "
               "(scenario 1, slack 500 s)\n";
  Table t({"transfer delay (s)", "wasted", "idle"});
  for (const double d : {0.0, 120.0, 600.0}) {
    Scenario sc = paper_scenario1(1500.0);
    for (auto& p : sc.projects) {
      for (auto& jc : p.job_classes) jc.transfer_delay = d;
    }
    PolicyConfig pol = base_policy();
    const Metrics m = run(sc, pol);
    t.add_row({fmt(d, 0), fmt(m.wasted_fraction()), fmt(m.idle_fraction())});
  }
  t.print(std::cout);
}

}  // namespace

int main() {
  std::cout << "=== Ablation studies ===\n";
  a1_a2_deadline_mechanisms();
  a3_checkpointing();
  a4_estimate_error();
  a5_edf_vs_llf();
  a6_memory_limit();
  a7_buffer_sizing();
  a8_transfer_delay();
  a9_transfer_ordering();
  a10_duration_correction();
  a11_leave_in_memory();
  return 0;
}
