// Micro-benchmarks for the resilience layer (docs/fleet.md): what shard
// checkpointing costs on the write path, what resume costs on the read
// path, and the end-to-end overhead checkpointing adds to a shard. The
// perf gate (tools/bce_perf) tracks two of these shapes as the
// fleet_sharded and shard_checkpoint_resume kernels; this driver gives
// the finer breakdown.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "core/bce.hpp"
#include "fleet/shard.hpp"
#include "fleet/shard_worker.hpp"

namespace {

using namespace bce;

std::string tmp_path(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

/// A small replicated-scenario shard: 2 hosts of paper scenario 2.
ShardTask make_task(double days) {
  ShardTask task;
  task.label = "bench";
  Scenario sc = paper_scenario2();
  sc.duration = days * kSecondsPerDay;
  for (std::uint64_t h = 0; h < 2; ++h) {
    Scenario host = sc;
    host.seed = sc.seed + h;
    task.scenario_texts.push_back(serialize_scenario(host));
  }
  return task;
}

/// A checkpoint carrying a mid-run emulator frame — the expensive shape
/// (host-boundary checkpoints have an empty frame).
ShardCheckpoint make_checkpoint(const ShardTask& task) {
  Scenario sc = parse_scenario(task.scenario_texts[0]);
  sc.duration = 0.25 * kSecondsPerDay;
  EmulationOptions opt;
  Emulator em(sc, opt);
  ShardCheckpoint cp;
  cp.hosts_done = 0;
  cp.seq = 1;
  em.set_checkpoint_hook([&](Emulator& e) {
    if (cp.frame.empty() && e.now() >= 0.5 * sc.duration) {
      cp.frame = capture_savestate(e);
    }
  });
  (void)em.run();
  return cp;
}

void BM_ShardCheckpointWrite(benchmark::State& state) {
  const ShardTask task = make_task(0.5);
  const ShardCheckpoint cp = make_checkpoint(task);
  const std::string path = tmp_path("resilience_bench_write.bcsp");
  for (auto _ : state) {
    write_shard_checkpoint(path, task, cp);
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ShardCheckpointWrite);

void BM_ShardCheckpointReadResume(benchmark::State& state) {
  const ShardTask task = make_task(0.5);
  const ShardCheckpoint cp = make_checkpoint(task);
  const std::string path = tmp_path("resilience_bench_read.bcsp");
  write_shard_checkpoint(path, task, cp);
  const Scenario sc = parse_scenario(task.scenario_texts[0]);
  const EmulationOptions opt;
  for (auto _ : state) {
    const ShardCheckpoint in = read_shard_checkpoint(path, task);
    Emulator em(sc, opt);
    restore_savestate(em, in.frame);
    benchmark::DoNotOptimize(em.now());
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ShardCheckpointReadResume);

/// End-to-end shard cost without/with checkpointing — the difference is
/// the resilience tax a worker pays per shard.
void BM_ShardInline(benchmark::State& state) {
  const bool checkpointed = state.range(0) != 0;
  ShardTask task = make_task(0.1);
  const std::string path = tmp_path("resilience_bench_inline.bcsp");
  if (checkpointed) {
    task.checkpoint_path = path;
    task.checkpoint_every_hosts = 1;
    task.checkpoint_sim_period = 0.02 * kSecondsPerDay;
  }
  for (auto _ : state) {
    const ShardOutput out = run_shard(task);
    benchmark::DoNotOptimize(out.hosts_done);
  }
  if (checkpointed) std::remove(path.c_str());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
  state.SetLabel(checkpointed ? "checkpointed" : "bare");
}
BENCHMARK(BM_ShardInline)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
