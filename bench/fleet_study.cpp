// Fleet study — the §6.2 cross-host share-enforcement extension:
// "if a particular host is well-suited to a particular project, it could
// run only that project, and the difference could be made up on other
// hosts."
//
// A heterogeneous 4-host fleet attached to 3 projects; per-host enforcement
// (BOINC's behaviour) is compared with cross-host enforcement (per-host
// shares derived from a fleet-wide max-min allocation).
//
// The fleet runs through the sharded supervisor (docs/fleet.md): hosts are
// partitioned into shards executed by supervised worker subprocesses, so a
// crashed worker is retried from checkpoint instead of sinking the study,
// and SIGINT flushes whatever completed plus the coverage table.
//
// Usage: fleet_study [workers]   (0 = in-process reference path)

#include <cstdlib>
#include <iostream>

#include "common.hpp"
#include "core/bce.hpp"
#include "fleet/fleet.hpp"
#include "fleet/shard_worker.hpp"
#include "fleet/supervisor.hpp"

int main(int argc, char** argv) {
  // The supervisor re-execs this binary as its worker processes.
  if (const auto rc = bce::maybe_run_shard_worker(argc, argv)) return *rc;
  using namespace bce;

  bench::install_sigint_handler();
  const unsigned workers =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 2;

  FleetConfig fc;
  fc.duration = 5.0 * kSecondsPerDay;

  auto host = [](const char* name, HostInfo h, std::uint64_t seed) {
    FleetHostSpec s;
    s.name = name;
    s.host = h;
    s.seed = seed;
    return s;
  };
  fc.hosts = {
      host("fast_cpu", HostInfo::cpu_only(8, 2e9), 1),
      host("slow_cpu", HostInfo::cpu_only(2, 1e9), 2),
      host("nvidia_box", HostInfo::cpu_gpu(4, 1e9, 1, 20e9), 3),
      host("ati_box",
           HostInfo::cpu_gpu(4, 1e9, 1, 15e9, ProcType::kAti), 4),
  };

  auto cpu_class = [](double secs) {
    JobClass jc;
    jc.name = "cpu";
    jc.flops_est = secs * 1e9;
    jc.latency_bound = 2.0 * kSecondsPerDay;
    jc.usage = ResourceUsage::cpu(1.0);
    return jc;
  };
  auto gpu_class = [](ProcType t, double secs, double gflops) {
    JobClass jc;
    jc.name = "gpu";
    jc.flops_est = secs * gflops * 1e9;
    jc.latency_bound = 2.0 * kSecondsPerDay;
    jc.usage = ResourceUsage::gpu(t, 1.0, 0.05);
    return jc;
  };

  ProjectConfig a;
  a.name = "cpu_project";
  a.resource_share = 100.0;
  a.job_classes = {cpu_class(2000.0)};
  ProjectConfig b;
  b.name = "nvidia_project";
  b.resource_share = 100.0;
  b.job_classes = {gpu_class(ProcType::kNvidia, 2000.0, 20.0)};
  ProjectConfig c;
  c.name = "mixed_project";
  c.resource_share = 100.0;
  c.job_classes = {cpu_class(1500.0),
                   gpu_class(ProcType::kAti, 1500.0, 15.0)};
  fc.projects = {a, b, c};

  PolicyConfig pol;
  pol.sched = JobSchedPolicy::kGlobal;

  SupervisorConfig sup;
  sup.n_workers = workers;
  sup.partial_ok = true;  // a lost shard degrades the study, not kills it
  sup.stop_flag = &bench::g_interrupted;

  std::cout << "Fleet study: 4 heterogeneous hosts, 3 projects, equal global "
               "shares, 5 days ("
            << workers << " worker(s))\n\n";

  Table t({"enforcement", "share_violation", "idle", "cpu_proj", "nvidia_proj",
           "mixed_proj"});
  ShardedFleetResult results[2];
  int row = 0;
  for (const auto mode :
       {FleetEnforcement::kPerHost, FleetEnforcement::kCrossHost}) {
    ShardedFleetResult r = run_sharded_fleet(fc, pol, mode, sup);
    if (bench::interrupted()) {
      std::cout << "coverage at interrupt:\n";
      r.sharded.coverage_table().print(std::cout);
      return bench::interrupt_flush(t, "fleet_study");
    }
    t.add_row({mode == FleetEnforcement::kPerHost ? "per-host" : "cross-host",
               fmt(r.share_violation), fmt(r.idle_fraction()),
               fmt(r.usage_fraction[0]), fmt(r.usage_fraction[1]),
               fmt(r.usage_fraction[2])});
    if (!r.sharded.complete()) {
      std::cout << "warning: " << r.sharded.hosts_lost
                << " host(s) lost; figures cover " << r.sharded.hosts_done
                << "/" << r.sharded.hosts_total << " hosts\n";
      r.sharded.coverage_table().print(std::cout);
    }
    results[row++] = std::move(r);
  }
  t.print(std::cout);

  std::cout << "\nassigned shares under cross-host enforcement "
               "(host rows, project columns, share units):\n";
  Table t2({"host", "cpu_project", "nvidia_project", "mixed_project"});
  for (std::size_t h = 0; h < fc.hosts.size(); ++h) {
    t2.add_row({fc.hosts[h].name, fmt(results[1].assigned_shares[h][0], 1),
                fmt(results[1].assigned_shares[h][1], 1),
                fmt(results[1].assigned_shares[h][2], 1)});
  }
  t2.print(std::cout);
  std::cout << "\nexpected shape: cross-host concentrates each project on "
               "its best hosts and tracks the global shares more closely.\n";
  return 0;
}
