// Figure 2 — "The round-robin simulator predicts how long each processor
// instance will be busy given the current workload."
//
// Builds a mixed CPU+GPU queue across three projects, runs RR-sim once, and
// prints: per-job projected finish vs deadline, per-type SAT / SHORTFALL,
// and an ASCII rendering of the predicted busy profile (the figure's bars).

#include <cmath>
#include <iostream>
#include <vector>

#include "common.hpp"

int main() {
  using namespace bce;

  HostInfo host = HostInfo::cpu_gpu(4, 1e9, 1, 10e9);
  Preferences prefs;
  prefs.min_queue = 4.0 * kSecondsPerHour;
  prefs.max_queue = 12.0 * kSecondsPerHour;
  PerProc<double> avail;
  avail.fill(1.0);
  RrSim rr(host, prefs, avail);

  // Three projects with different shares and a mix of job types/sizes.
  const std::vector<double> shares = {0.5, 0.3, 0.2};
  std::vector<Result> jobs;
  JobId id = 0;
  auto add = [&](ProjectId p, double seconds, double deadline_h, bool gpu) {
    Result r;
    r.id = id++;
    r.project = p;
    r.usage = gpu ? ResourceUsage::gpu(ProcType::kNvidia, 1.0, 0.05)
                  : ResourceUsage::cpu(1.0);
    r.flops_est = r.flops_total = seconds * r.usage.flops_rate(host);
    r.received = static_cast<double>(id);  // FIFO tie-break
    r.deadline = deadline_h * 3600.0;
    jobs.push_back(r);
  };
  add(0, 7200, 24, false);
  add(0, 7200, 24, false);
  add(0, 3600, 4, false);   // tight deadline, will be endangered
  add(1, 10800, 48, false);
  add(1, 5400, 48, false);
  add(1, 3600, 6, true);
  add(2, 14400, 12, false);
  add(2, 7200, 8, true);

  std::vector<Result*> ptrs;
  for (auto& j : jobs) ptrs.push_back(&j);
  const RrSimOutput out = rr.run(0.0, ptrs, shares);

  Table tj({"job", "project", "type", "runtime(s)", "deadline(s)",
            "projected finish", "endangered"});
  for (const auto& j : jobs) {
    tj.add_row({std::to_string(j.id), std::to_string(j.project),
                proc_name(j.usage.primary_type()),
                fmt(j.flops_total / j.usage.flops_rate(host), 0),
                fmt(j.deadline, 0), fmt(j.rr_projected_finish, 0),
                j.deadline_endangered ? "YES" : "no"});
  }
  std::cout << "Figure 2: round-robin simulation of the current workload\n\n";
  tj.print(std::cout);
  bench::write_results_csv(tj, "fig2_rrsim_jobs");

  Table tt({"type", "SAT(T) s", "SHORTFALL(T) inst-sec", "idle now"});
  for (const auto t : kAllProcTypes) {
    if (host.count[t] == 0) continue;
    tt.add_row({proc_name(t), fmt(out.saturated[t], 0),
                fmt(out.shortfall[t], 0), fmt(out.idle_instances_now[t], 1)});
  }
  std::cout << '\n';
  tt.print(std::cout);
  bench::write_results_csv(tt, "fig2_rrsim_types");

  // Busy-profile bars: predicted busy instances over time, per type.
  std::cout << "\npredicted busy instances over time ('#' = 1 busy instance, "
               "column = 30 min):\n";
  const double bucket = 1800.0;
  const int cols = static_cast<int>(std::ceil(out.span / bucket));
  for (const auto t : kAllProcTypes) {
    if (host.count[t] == 0) continue;
    for (int level = host.count[t]; level >= 1; --level) {
      std::string row;
      for (int c = 0; c < cols; ++c) {
        const double tm = c * bucket + 1.0;
        double busy = 0.0;
        for (std::size_t i = 0; i < out.profile.size(); ++i) {
          const bool last = i + 1 == out.profile.size();
          if (out.profile[i].t <= tm && (last || out.profile[i + 1].t > tm)) {
            busy = out.profile[i].busy[t];
            break;
          }
        }
        row += busy >= level - 0.5 ? '#' : '.';
      }
      std::printf("%-6s %d |%s|\n", proc_name(t), level, row.c_str());
    }
  }
  std::printf("queue drains after %.1f hours\n", out.span / 3600.0);
  return 0;
}
