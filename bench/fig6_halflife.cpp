// Figure 6 — "In a scenario with long low-slack jobs, credit estimate
// half-life affects resource share violation."
//
// Scenario 3: CPU-only host; project 1 supplies million-second low-slack
// jobs that are immediately deadline-endangered (the client must run them
// exclusively); project 2 has normal jobs. JS_GLOBAL (JS-REC) with the REC
// half-life A swept. Paper shape: small A = short memory — after a long
// job completes the client quickly "forgets" that project 1 overdrew, so it
// fetches the next long job and share violation stays high; A of several
// times the job length brings usage back toward the shares.

#include <cmath>
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bce;

  const int seeds = bench::seeds_from_argv(argc, argv, 1);

  // Job length is 1e6 s; sweep A from far below to several times that.
  const std::vector<double> half_lives = {1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7};

  std::vector<bench::GridPoint> points;
  for (const double a : half_lives) {
    bench::GridPoint pt;
    pt.label = "A=" + std::to_string(a);
    pt.scenario = paper_scenario3();
    pt.options.policy.sched = JobSchedPolicy::kGlobal;
    pt.options.policy.rec_half_life = a;
    points.push_back(std::move(pt));
  }
  std::cout << "Figure 6: REC half-life vs share violation, scenario 3 "
               "(100 days, job length 1e6 s, " << seeds << " seed(s))\n\n";
  const auto grid = bench::run_grid(points, seeds);

  Table table({"half-life A (s)", "A / job-length", "share_violation",
               "P1(long) usage", "P2 usage", "wasted"});
  PlotSeries viol_series{"share violation", {}};
  for (std::size_t i = 0; i < half_lives.size(); ++i) {
    const double a = half_lives[i];
    const double viol =
        grid[i].mean([](const Metrics& m) { return m.share_violation(); });
    table.add_row(
        {fmt(a, 0), fmt(a / 1e6, 2), fmt(viol),
         fmt(grid[i].mean([](const Metrics& m) { return m.usage_fraction[0]; })),
         fmt(grid[i].mean([](const Metrics& m) { return m.usage_fraction[1]; })),
         fmt(grid[i].mean([](const Metrics& m) { return m.wasted_fraction(); }))});
    viol_series.points.emplace_back(std::log10(a), viol);
  }
  table.print(std::cout);
  std::cout << '\n';
  bench::write_results_csv(table, "fig6_halflife");

  SvgPlot plot("Figure 6: REC half-life vs share violation (job = 1e6 s)",
               "log10(half-life A, seconds)", "resource share violation");
  plot.add_series(std::move(viol_series));
  plot.set_y_range(0.0, 0.6);
  bench::save_results_svg(plot, "fig6_halflife");
  std::cout << "\npaper shape: violation high for A << job length, falling "
               "once A reaches several times the job length.\n";
  return 0;
}
