// Figure 6 — "In a scenario with long low-slack jobs, credit estimate
// half-life affects resource share violation."
//
// Scenario 3: CPU-only host; project 1 supplies million-second low-slack
// jobs that are immediately deadline-endangered (the client must run them
// exclusively); project 2 has normal jobs. JS_GLOBAL (JS-REC) with the REC
// half-life A swept. Paper shape: small A = short memory — after a long
// job completes the client quickly "forgets" that project 1 overdrew, so it
// fetches the next long job and share violation stays high; A of several
// times the job length brings usage back toward the shares.

#include <cmath>
#include <filesystem>
#include <iostream>

#include "core/bce.hpp"
#include "core/svg_plot.hpp"

int main(int argc, char** argv) {
  using namespace bce;

  const int seeds = argc > 1 ? std::atoi(argv[1]) : 1;

  // Job length is 1e6 s; sweep A from far below to several times that.
  const std::vector<double> half_lives = {1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7};

  std::vector<RunSpec> specs;
  for (const double a : half_lives) {
    for (int s = 0; s < seeds; ++s) {
      RunSpec spec;
      spec.scenario = paper_scenario3();
      spec.scenario.seed = static_cast<std::uint64_t>(s + 1);
      spec.options.policy.sched = JobSchedPolicy::kGlobal;
      spec.options.policy.rec_half_life = a;
      spec.label = "A=" + std::to_string(a);
      specs.push_back(std::move(spec));
    }
  }
  std::cout << "Figure 6: REC half-life vs share violation, scenario 3 "
               "(100 days, job length 1e6 s, " << seeds << " seed(s))\n\n";
  const auto results = run_batch(specs);

  Table table({"half-life A (s)", "A / job-length", "share_violation",
               "P1(long) usage", "P2 usage", "wasted"});
  PlotSeries viol_series{"share violation", {}};
  std::size_t idx = 0;
  for (const double a : half_lives) {
    double viol = 0.0;
    double u1 = 0.0;
    double u2 = 0.0;
    double wasted = 0.0;
    for (int s = 0; s < seeds; ++s) {
      const Metrics& m = results[idx++].result.metrics;
      viol += m.share_violation();
      u1 += m.usage_fraction[0];
      u2 += m.usage_fraction[1];
      wasted += m.wasted_fraction();
    }
    table.add_row({fmt(a, 0), fmt(a / 1e6, 2), fmt(viol / seeds),
                   fmt(u1 / seeds), fmt(u2 / seeds), fmt(wasted / seeds)});
    viol_series.points.emplace_back(std::log10(a), viol / seeds);
  }
  table.print(std::cout);

  SvgPlot plot("Figure 6: REC half-life vs share violation (job = 1e6 s)",
               "log10(half-life A, seconds)", "resource share violation");
  plot.add_series(std::move(viol_series));
  plot.set_y_range(0.0, 0.6);
  std::filesystem::create_directories("results");
  if (plot.save("results/fig6_halflife.svg")) {
    std::cout << "\nplot written to results/fig6_halflife.svg\n";
  }
  std::cout << "\npaper shape: violation high for A << job length, falling "
               "once A reaches several times the job length.\n";
  return 0;
}
