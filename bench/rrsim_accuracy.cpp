// RR-sim prediction accuracy — validates the §3.2 continuous
// approximation: "the simulation is approximate: instead of modeling
// individual timeslices, it uses a continuous approximation."
//
// For several scenarios, compare RR-sim's *first* completion projection
// for each job (taken at the scheduling pass after the job arrived)
// against the job's actual completion time in the emulation, and report
// the relative-error distribution. Small errors justify using RR-sim's
// outputs (deadline flags, SAT, SHORTFALL) to drive scheduling and fetch.

#include <cmath>
#include <iostream>

#include "core/bce.hpp"

int main() {
  using namespace bce;

  struct Case {
    const char* name;
    Scenario sc;
  };
  std::vector<Case> cases;
  {
    Scenario s1 = paper_scenario1(1800.0);
    s1.duration = 5.0 * kSecondsPerDay;
    cases.push_back({"scenario1 (2 proj, cpu)", s1});
    Scenario s2 = paper_scenario2();
    s2.duration = 5.0 * kSecondsPerDay;
    cases.push_back({"scenario2 (cpu+gpu)", s2});
    Scenario s4 = paper_scenario4();
    s4.duration = 3.0 * kSecondsPerDay;
    cases.push_back({"scenario4 (20 proj)", s4});
  }

  std::cout << "RR-sim first-projection accuracy vs actual completion\n"
            << "(relative error = (actual - predicted) / turnaround)\n\n";

  Table t({"scenario", "jobs", "mean err", "|err| p50-ish (stddev)",
           "max |err|", "within 25%"});
  for (auto& c : cases) {
    EmulationOptions opt;
    opt.policy.sched = JobSchedPolicy::kGlobal;
    const EmulationResult res = emulate(c.sc, opt);

    RunningStats err;
    RunningStats abs_err;
    int within = 0;
    int n = 0;
    for (const auto& j : res.jobs) {
      if (!j.is_complete() || j.first_projected_finish >= kNever) continue;
      const double turnaround = j.completed_at - j.received;
      if (turnaround <= 0.0) continue;
      const double e =
          (j.completed_at - j.first_projected_finish) / turnaround;
      err.add(e);
      abs_err.add(std::abs(e));
      if (std::abs(e) <= 0.25) ++within;
      ++n;
    }
    t.add_row({c.name, std::to_string(n), fmt(err.mean()),
               fmt(abs_err.mean()) + " (" + fmt(abs_err.stddev()) + ")",
               fmt(abs_err.max(), 2),
               fmt(n > 0 ? 100.0 * within / n : 0.0, 1) + "%"});
  }
  t.print(std::cout);
  std::cout << "\nexpected shape: predictions cluster near the truth; the\n"
               "approximation errs when later arrivals change the mix, which\n"
               "is exactly why the client re-runs RR-sim on every pass.\n";
  return 0;
}
