// Population study (paper §6.2 future work): Monte-Carlo sampling over the
// scenario population, comparing the full modern policy stack
// (JS_GLOBAL + JF_HYSTERESIS) against the baseline (JS_WRR + JF_ORIG)
// across the whole population rather than on hand-picked scenarios.
//
// Usage: population_study [n_scenarios] [duration_days] [threads]

#include <cstdlib>
#include <iostream>

#include "common.hpp"
#include "core/bce.hpp"

int main(int argc, char** argv) {
  using namespace bce;

  const int n = argc > 1 ? std::atoi(argv[1]) : 30;
  const double days = argc > 2 ? std::atof(argv[2]) : 3.0;
  const unsigned threads = bench::threads_from_argv(argc, argv, 3);

  Xoshiro256 rng(0xb01ccull);
  PopulationParams pp;
  pp.duration = days * kSecondsPerDay;

  std::vector<RunSpec> specs;
  std::vector<Scenario> scenarios;
  for (int i = 0; i < n; ++i) {
    scenarios.push_back(sample_scenario(rng, pp));
    for (const bool modern : {false, true}) {
      RunSpec spec;
      spec.scenario = scenarios.back();
      spec.options.policy.sched =
          modern ? JobSchedPolicy::kGlobal : JobSchedPolicy::kWrr;
      spec.options.policy.fetch =
          modern ? FetchPolicy::kHysteresis : FetchPolicy::kOrig;
      // The modern stack also suppresses fetch from overcommitted projects
      // (hysteresis alone batch-fetches doomed low-slack work).
      spec.options.policy.fetch_deadline_suppression = modern;
      spec.label = std::to_string(i);
      specs.push_back(std::move(spec));
    }
  }

  std::cout << "Population study: " << n << " sampled scenarios, " << days
            << " days each, baseline (JS_WRR+JF_ORIG) vs modern "
               "(JS_GLOBAL+JF_HYSTERESIS)\n\n";
  const auto results = run_batch(specs, threads);

  struct Agg {
    RunningStats idle, wasted, viol, mono, rpcs, score;
    void add(const Metrics& m) {
      idle.add(m.idle_fraction());
      wasted.add(m.wasted_fraction());
      viol.add(m.share_violation());
      mono.add(m.monotony);
      rpcs.add(m.rpcs_per_job());
      score.add(m.weighted_score());
    }
  } base, modern;

  Histogram delta(-0.5, 0.5, 20);
  int wins = 0;
  for (int i = 0; i < n; ++i) {
    const auto& b = results[static_cast<std::size_t>(2 * i)].result.metrics;
    const auto& m = results[static_cast<std::size_t>(2 * i + 1)].result.metrics;
    base.add(b);
    modern.add(m);
    delta.add(m.weighted_score() - b.weighted_score());
    if (m.weighted_score() < b.weighted_score()) ++wins;
  }

  Table t({"metric", "baseline mean", "modern mean", "baseline max",
           "modern max"});
  auto row = [&](const char* name, const RunningStats& a,
                 const RunningStats& b) {
    t.add_row({name, fmt(a.mean()), fmt(b.mean()), fmt(a.max()), fmt(b.max())});
  };
  row("idle", base.idle, modern.idle);
  row("wasted", base.wasted, modern.wasted);
  row("share_violation", base.viol, modern.viol);
  row("monotony", base.mono, modern.mono);
  row("rpcs/job", base.rpcs, modern.rpcs);
  row("weighted score", base.score, modern.score);
  t.print(std::cout);

  std::cout << "\nmodern wins on " << wins << "/" << n
            << " scenarios; distribution of score delta (modern - baseline, "
               "negative = modern better):\n"
            << delta.to_ascii(40);
  return 0;
}
