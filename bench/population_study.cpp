// Population study (paper §6.2 future work): Monte-Carlo sampling over the
// scenario population, comparing the full modern policy stack
// (JS_GLOBAL + JF_HYSTERESIS) against the baseline (JS_WRR + JF_ORIG)
// across the whole population rather than on hand-picked scenarios.
//
// Hosts are sampled and emulated through the sharded supervisor
// (docs/fleet.md) with per-host figures enabled: host i is seeded as
// seed + stride * (i + 1), so both policy sweeps see the *same* sampled
// scenario for host i and the comparison stays paired even though the
// shards run in worker subprocesses. SIGINT flushes the partial table and
// the coverage accounting of the run in flight.
//
// Usage: population_study [n_hosts] [duration_days] [workers]

#include <cstdlib>
#include <iostream>

#include "common.hpp"
#include "core/bce.hpp"
#include "fleet/shard_worker.hpp"
#include "fleet/supervisor.hpp"

int main(int argc, char** argv) {
  // The supervisor re-execs this binary as its worker processes.
  if (const auto rc = bce::maybe_run_shard_worker(argc, argv)) return *rc;
  using namespace bce;

  bench::install_sigint_handler();
  const int n = argc > 1 ? std::atoi(argv[1]) : 30;
  const double days = argc > 2 ? std::atof(argv[2]) : 3.0;
  const unsigned workers =
      argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 2;

  PopulationParams pp;
  pp.duration = days * kSecondsPerDay;
  const std::uint64_t seed = 0xb01ccull;

  PolicyConfig baseline_pol;
  baseline_pol.sched = JobSchedPolicy::kWrr;
  baseline_pol.fetch = FetchPolicy::kOrig;
  PolicyConfig modern_pol;
  modern_pol.sched = JobSchedPolicy::kGlobal;
  modern_pol.fetch = FetchPolicy::kHysteresis;
  // The modern stack also suppresses fetch from overcommitted projects
  // (hysteresis alone batch-fetches doomed low-slack work).
  modern_pol.fetch_deadline_suppression = true;

  SupervisorConfig sup;
  sup.n_workers = workers;
  sup.partial_ok = true;
  sup.stop_flag = &bench::g_interrupted;

  std::cout << "Population study: " << n << " sampled scenarios, " << days
            << " days each, baseline (JS_WRR+JF_ORIG) vs modern "
               "(JS_GLOBAL+JF_HYSTERESIS), "
            << workers << " worker(s)\n\n";

  Table t({"metric", "baseline mean", "modern mean", "baseline max",
           "modern max"});

  ShardedResult runs[2];
  int row = 0;
  for (const PolicyConfig* pol : {&baseline_pol, &modern_pol}) {
    ShardedResult r = run_sharded(
        make_population_shard_tasks(pp, static_cast<std::uint64_t>(n), seed,
                                    *pol, 4, /*include_host_figures=*/true),
        sup);
    if (bench::interrupted()) {
      std::cout << "coverage at interrupt ("
                << (row == 0 ? "baseline" : "modern") << " sweep):\n";
      r.coverage_table().print(std::cout);
      return bench::interrupt_flush(t, "population_study");
    }
    if (!r.complete()) {
      std::cout << "warning: " << (row == 0 ? "baseline" : "modern")
                << " sweep lost " << r.hosts_lost << "/" << r.hosts_total
                << " host(s)\n";
      r.coverage_table().print(std::cout);
    }
    runs[row++] = std::move(r);
  }

  struct Agg {
    RunningStats idle, wasted, viol, mono, rpcs, score;
    void add(const HostFigures& f) {
      idle.add(f.idle);
      wasted.add(f.wasted);
      viol.add(f.share_violation);
      mono.add(f.monotony);
      rpcs.add(f.rpcs_per_job);
      score.add(f.score);
    }
  } base, modern;

  // Paired per-host comparison over hosts both sweeps completed: shard i
  // covers the same host range in both runs, so "done in both" is exactly
  // the intersection of done shards.
  Histogram delta(-0.5, 0.5, 20);
  int wins = 0;
  int paired = 0;
  const auto& bs = runs[0];
  const auto& ms = runs[1];
  std::uint64_t host0 = 0;
  for (std::size_t s = 0; s < bs.shards.size(); ++s) {
    const bool both_done = bs.shards[s].state == ShardState::kDone &&
                           ms.shards[s].state == ShardState::kDone;
    for (std::uint64_t h = 0; both_done && h < bs.shards[s].n_hosts; ++h) {
      const HostFigures& b = bs.host_figures[host0 + h];
      const HostFigures& m = ms.host_figures[host0 + h];
      base.add(b);
      modern.add(m);
      delta.add(m.score - b.score);
      if (m.score < b.score) ++wins;
      ++paired;
    }
    host0 += bs.shards[s].n_hosts;
  }

  auto trow = [&](const char* name, const RunningStats& a,
                  const RunningStats& b) {
    t.add_row({name, fmt(a.mean()), fmt(b.mean()), fmt(a.max()), fmt(b.max())});
  };
  trow("idle", base.idle, modern.idle);
  trow("wasted", base.wasted, modern.wasted);
  trow("share_violation", base.viol, modern.viol);
  trow("monotony", base.mono, modern.mono);
  trow("rpcs/job", base.rpcs, modern.rpcs);
  trow("weighted score", base.score, modern.score);
  t.print(std::cout);

  std::cout << "\nmodern wins on " << wins << "/" << paired
            << " scenarios; distribution of score delta (modern - baseline, "
               "negative = modern better):\n"
            << delta.to_ascii(40);
  return 0;
}
