#pragma once

// Shared harness for the figure drivers. Every driver used to hand-roll the
// same three things: the (point x policy x seed) RunSpec expansion with
// seed = s + 1, the idx-walking loop that averages metrics back over seeds,
// and the results/ output boilerplate. They live here once; a driver builds
// GridPoints, calls run_grid, and reads seed-means off the result.

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/bce.hpp"
#include "core/svg_plot.hpp"

namespace bce::bench {

/// Seed replicate count, from the drivers' shared argv[1] convention.
inline int seeds_from_argv(int argc, char** argv, int fallback) {
  return argc > 1 ? std::atoi(argv[1]) : fallback;
}

/// Batch thread count from argv[pos]; 0 (the default) defers to
/// resolve_thread_count — BCE_THREADS, then hardware concurrency.
inline unsigned threads_from_argv(int argc, char** argv, int pos) {
  if (argc <= pos) return 0;
  const int v = std::atoi(argv[pos]);
  return v > 0 ? static_cast<unsigned>(v) : 0;
}

/// One grid point: a (scenario, options) pair emulated over N seeds.
struct GridPoint {
  std::string label;
  Scenario scenario;
  EmulationOptions options;
};

/// Per-seed metrics of one grid point, with seed-mean helpers.
struct SeedMean {
  std::string label;
  std::vector<Metrics> runs;  ///< seed order (seed = 1..N)

  /// Mean of an arbitrary metric projection over the seed replicates.
  template <class F>
  [[nodiscard]] double mean(F&& f) const {
    double sum = 0.0;
    for (const auto& m : runs) sum += f(m);
    return runs.empty() ? 0.0 : sum / static_cast<double>(runs.size());
  }
};

/// Expand each point over seeds 1..N (matching the original drivers'
/// `seed = s + 1`), run the whole grid in parallel, and collapse the
/// results back into per-point seed groups, in input order.
///
/// Points that differ *only in duration* (same scenario otherwise, same
/// policy — detected via scenario_fingerprint, which zeroes the duration)
/// are warm-started: per seed, the group runs as one run_chain_batch chain,
/// so the shared scenario prefix is emulated once instead of once per
/// duration. The savestate layer guarantees chained results are
/// byte-identical to cold runs (docs/savestate.md), so drivers see the
/// exact same numbers either way, just sooner. Points carrying a logger,
/// trace, or auditor are never chained (those sinks observe the whole run,
/// including the replayed prefix), and grids with no duration-varying
/// groups take the flat run_batch path unchanged.
inline std::vector<SeedMean> run_grid(const std::vector<GridPoint>& points,
                                      int seeds, unsigned n_threads = 0) {
  const auto n_seeds = static_cast<std::size_t>(seeds > 0 ? seeds : 0);

  // Group point indices by everything but the duration. The fingerprint is
  // computed with the seed normalized to 0 because run_grid overwrites the
  // seed per replicate anyway.
  std::map<std::pair<std::uint64_t, bool>, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& pt = points[i];
    if (pt.options.logger != nullptr || pt.options.trace != nullptr ||
        pt.options.auditor != nullptr) {
      continue;  // never chained; handled by the flat path below
    }
    Scenario keyed = pt.scenario;
    keyed.seed = 0;
    groups[{scenario_fingerprint(keyed, pt.options.policy),
            pt.options.record_timeline}]
        .push_back(i);
  }

  // A group warm-starts only when it spans at least two distinct horizons.
  std::vector<bool> chained(points.size(), false);
  std::vector<ChainSpec> chains;
  std::vector<std::vector<std::size_t>> chain_members;  // aligned with chains
  for (const auto& [key, members] : groups) {
    bool varied = false;
    for (const std::size_t i : members) {
      varied |=
          points[i].scenario.duration != points[members[0]].scenario.duration;
    }
    if (!varied) continue;
    for (const std::size_t i : members) chained[i] = true;
    for (std::size_t s = 0; s < n_seeds; ++s) {
      ChainSpec chain;
      chain.label = points[members[0]].label;
      chain.scenario = points[members[0]].scenario;
      chain.scenario.seed = static_cast<std::uint64_t>(s + 1);
      chain.options = points[members[0]].options;
      chain.durations.reserve(members.size());
      for (const std::size_t i : members) {
        chain.durations.push_back(points[i].scenario.duration);
      }
      chains.push_back(std::move(chain));
      chain_members.push_back(members);
    }
  }

  std::vector<RunSpec> specs;
  std::vector<std::size_t> spec_point;  // aligned with specs
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (chained[i]) continue;
    for (std::size_t s = 0; s < n_seeds; ++s) {
      RunSpec spec;
      spec.label = points[i].label;
      spec.scenario = points[i].scenario;
      spec.scenario.seed = static_cast<std::uint64_t>(s + 1);
      spec.options = points[i].options;
      specs.push_back(std::move(spec));
      spec_point.push_back(i);
    }
  }

  std::vector<SeedMean> out(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    out[i].label = points[i].label;
    out[i].runs.resize(n_seeds);
  }
  const auto chain_results = run_chain_batch(chains, n_threads);
  for (std::size_t c = 0; c < chain_results.size(); ++c) {
    const std::size_t s = c % n_seeds;  // chains were emitted seed-major
    const auto& members = chain_members[c];
    for (std::size_t k = 0; k < members.size(); ++k) {
      out[members[k]].runs[s] = chain_results[c].results[k].metrics;
    }
  }
  const auto flat_results = run_batch(specs, n_threads);
  for (std::size_t j = 0; j < flat_results.size(); ++j) {
    out[spec_point[j]].runs[j % n_seeds] = flat_results[j].result.metrics;
  }
  return out;
}

// ---- SIGINT cooperation ---------------------------------------------------
//
// Long studies install a cooperative SIGINT handler so Ctrl-C flushes the
// rows computed so far (plus, for sharded studies, the coverage table)
// instead of discarding hours of work. The flag doubles as the sharded
// supervisor's stop_flag (fleet/supervisor.hpp), which drains workers and
// returns a partial ShardedResult.

inline volatile std::sig_atomic_t g_interrupted = 0;

inline void install_sigint_handler() {
  std::signal(SIGINT, [](int) { g_interrupted = 1; });
}

inline bool interrupted() { return g_interrupted != 0; }

/// Write \p table as results/<name>.csv (created on demand) and announce it.
inline bool write_results_csv(const Table& table, const std::string& name) {
  std::filesystem::create_directories("results");
  const std::string path = "results/" + name + ".csv";
  std::ofstream os(path);
  if (!os) return false;
  table.write_csv(os);
  if (!os) return false;
  std::cout << "table written to " << path << "\n";
  return true;
}

/// Flush the rows accumulated before an interrupt — print them, persist
/// them as results/<name>.csv — and return the conventional SIGINT exit
/// status (128 + SIGINT = 130) for the driver's main to propagate.
inline int interrupt_flush(const Table& table, const std::string& name) {
  std::cout << "\ninterrupted: flushing " << table.rows()
            << " partial row(s)\n";
  table.print(std::cout);
  write_results_csv(table, name);
  return 130;
}

/// Save \p plot as results/<name>.svg (created on demand) and announce it.
inline bool save_results_svg(const SvgPlot& plot, const std::string& name) {
  std::filesystem::create_directories("results");
  const std::string path = "results/" + name + ".svg";
  if (!plot.save(path)) return false;
  std::cout << "plot written to " << path << "\n";
  return true;
}

}  // namespace bce::bench
