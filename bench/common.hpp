#pragma once

// Shared harness for the figure drivers. Every driver used to hand-roll the
// same three things: the (point x policy x seed) RunSpec expansion with
// seed = s + 1, the idx-walking loop that averages metrics back over seeds,
// and the results/ output boilerplate. They live here once; a driver builds
// GridPoints, calls run_grid, and reads seed-means off the result.

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/bce.hpp"
#include "core/svg_plot.hpp"

namespace bce::bench {

/// Seed replicate count, from the drivers' shared argv[1] convention.
inline int seeds_from_argv(int argc, char** argv, int fallback) {
  return argc > 1 ? std::atoi(argv[1]) : fallback;
}

/// Batch thread count from argv[pos]; 0 (the default) defers to
/// resolve_thread_count — BCE_THREADS, then hardware concurrency.
inline unsigned threads_from_argv(int argc, char** argv, int pos) {
  if (argc <= pos) return 0;
  const int v = std::atoi(argv[pos]);
  return v > 0 ? static_cast<unsigned>(v) : 0;
}

/// One grid point: a (scenario, options) pair emulated over N seeds.
struct GridPoint {
  std::string label;
  Scenario scenario;
  EmulationOptions options;
};

/// Per-seed metrics of one grid point, with seed-mean helpers.
struct SeedMean {
  std::string label;
  std::vector<Metrics> runs;  ///< seed order (seed = 1..N)

  /// Mean of an arbitrary metric projection over the seed replicates.
  template <class F>
  [[nodiscard]] double mean(F&& f) const {
    double sum = 0.0;
    for (const auto& m : runs) sum += f(m);
    return runs.empty() ? 0.0 : sum / static_cast<double>(runs.size());
  }
};

/// Expand each point over seeds 1..N (matching the original drivers'
/// `seed = s + 1`), run the whole grid as one parallel batch, and collapse
/// the results back into per-point seed groups, in input order.
inline std::vector<SeedMean> run_grid(const std::vector<GridPoint>& points,
                                      int seeds, unsigned n_threads = 0) {
  std::vector<RunSpec> specs;
  specs.reserve(points.size() * static_cast<std::size_t>(seeds));
  for (const auto& pt : points) {
    for (int s = 0; s < seeds; ++s) {
      RunSpec spec;
      spec.label = pt.label;
      spec.scenario = pt.scenario;
      spec.scenario.seed = static_cast<std::uint64_t>(s + 1);
      spec.options = pt.options;
      specs.push_back(std::move(spec));
    }
  }
  const auto results = run_batch(specs, n_threads);
  std::vector<SeedMean> out;
  out.reserve(points.size());
  std::size_t idx = 0;
  for (const auto& pt : points) {
    SeedMean g;
    g.label = pt.label;
    g.runs.reserve(static_cast<std::size_t>(seeds));
    for (int s = 0; s < seeds; ++s) {
      g.runs.push_back(results[idx++].result.metrics);
    }
    out.push_back(std::move(g));
  }
  return out;
}

/// Write \p table as results/<name>.csv (created on demand) and announce it.
inline bool write_results_csv(const Table& table, const std::string& name) {
  std::filesystem::create_directories("results");
  const std::string path = "results/" + name + ".csv";
  std::ofstream os(path);
  if (!os) return false;
  table.write_csv(os);
  if (!os) return false;
  std::cout << "table written to " << path << "\n";
  return true;
}

/// Save \p plot as results/<name>.svg (created on demand) and announce it.
inline bool save_results_svg(const SvgPlot& plot, const std::string& name) {
  std::filesystem::create_directories("results");
  const std::string path = "results/" + name + ".svg";
  if (!plot.save(path)) return false;
  std::cout << "plot written to " << path << "\n";
  return true;
}

}  // namespace bce::bench
