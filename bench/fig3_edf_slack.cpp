// Figure 3 — "A job-scheduling policy that incorporates deadlines wastes
// less processing time."
//
// Scenario 1 (CPU only, two equal-share projects). Project 1's job runtime
// is 1000 s; the latency bound is swept from 1000 s to 2000 s (slack 0 to
// 1000 s). JS-WRR (deadlines ignored) is compared against the
// deadline-aware policies. Paper shape: at zero slack both policies waste
// ~half the processing (project 1's jobs cannot meet their deadlines); as
// slack grows, the deadline-aware policy's waste falls much faster.

#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bce;

  const int seeds = bench::seeds_from_argv(argc, argv, 3);

  std::vector<double> latencies;
  for (double l = 1000.0; l <= 2000.0 + 1e-9; l += 100.0) latencies.push_back(l);

  struct Policy {
    const char* name;
    JobSchedPolicy sched;
  };
  const std::vector<Policy> policies = {{"JS_WRR", JobSchedPolicy::kWrr},
                                        {"JS_LOCAL", JobSchedPolicy::kLocal},
                                        {"JS_GLOBAL", JobSchedPolicy::kGlobal}};

  std::vector<bench::GridPoint> points;
  for (const double lat : latencies) {
    for (const auto& pol : policies) {
      bench::GridPoint pt;
      pt.label = pol.name;
      pt.scenario = paper_scenario1(lat);
      pt.options.policy.sched = pol.sched;
      // JF_ORIG, the fetch policy of the paper's §5.1 era: small
      // continuous top-ups, so the queue holds ~1 job per project and
      // waste isolates the *scheduling* policy.
      pt.options.policy.fetch = FetchPolicy::kOrig;
      // Server deadline check off, as in the paper's §5.1 runs: with it
      // on, the server simply refuses infeasible jobs and no policy
      // wastes anything (see bench/ablations for that comparison).
      pt.options.policy.server_deadline_check = false;
      points.push_back(std::move(pt));
    }
  }

  std::cout << "Figure 3: wasted fraction vs slack, scenario 1 (" << seeds
            << " seed(s) per point)\n\n";
  const auto grid = bench::run_grid(points, seeds);

  Table table({"slack(s)", "JS_WRR", "JS_LOCAL", "JS_GLOBAL"});
  std::vector<PlotSeries> series(policies.size());
  for (std::size_t pi = 0; pi < policies.size(); ++pi) {
    series[pi].label = policies[pi].name;
  }
  std::size_t idx = 0;
  for (const double lat : latencies) {
    std::vector<std::string> row = {fmt(lat - 1000.0, 0)};
    for (std::size_t pi = 0; pi < policies.size(); ++pi) {
      const double wasted =
          grid[idx++].mean([](const Metrics& m) { return m.wasted_fraction(); });
      row.push_back(fmt(wasted));
      series[pi].points.emplace_back(lat - 1000.0, wasted);
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << '\n';
  bench::write_results_csv(table, "fig3_edf_slack");

  SvgPlot plot("Figure 3: deadline scheduling vs wasted processing",
               "slack (s)", "wasted fraction");
  for (auto& s : series) plot.add_series(std::move(s));
  plot.set_y_range(0.0, 0.6);
  bench::save_results_svg(plot, "fig3_edf_slack");
  std::cout << "\npaper shape: ~0.5 for all policies at slack 0; the "
               "deadline-aware policies (JS_LOCAL/JS_GLOBAL) drop toward 0 "
               "with modest slack while JS_WRR needs slack ~ runtime.\n";
  return 0;
}
